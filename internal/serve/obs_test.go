package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/obs"
)

// TestMetricsPrometheusExposition: the default /metrics body is valid
// Prometheus text exposition format with populated solve-latency buckets
// after a solve, and the legacy JSON stays reachable at ?format=json.
func TestMetricsPrometheusExposition(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts, "/v1/solve", solveRequest{
		moduleRequest: moduleRequest{Name: "m.c", C: solveSrc},
		Queries:       []string{"p"},
	}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	text := string(body)
	if err := obs.CheckExposition(text); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		"pip_solve_latency_seconds_count 1",
		"pip_queue_wait_seconds_count 1",
		"pip_requests_accepted_total 1",
		`pip_rule_firings_total{rule="trans"}`,
		`pip_engine_phase_seconds_total{phase="propagate"}`,
		"pip_engine_busy_seconds_total",
		"pip_engine_cpu_seconds_total",
		"pip_cache_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	// At least one finite latency bucket must be populated (the whole
	// request took well under the top bucket's 30s).
	if !strings.Contains(text, `pip_solve_latency_seconds_bucket{le="30"} 1`) {
		t.Fatalf("solve latency histogram not populated:\n%s", text)
	}

	// Legacy JSON is still served under ?format=json.
	var m metricsResponse
	if code := getJSON(t, ts, "/metrics?format=json", &m); code != http.StatusOK {
		t.Fatalf("json metrics returned %d", code)
	}
	if m.Server.Accepted != 1 || m.Engine.Jobs != 1 {
		t.Fatalf("json metrics wrong: %+v", m)
	}
}

// TestRequestIDAcceptedAndGenerated: the server echoes a sane
// caller-supplied X-Request-Id, generates one otherwise, and threads the
// ID through request logs.
func TestRequestIDAcceptedAndGenerated(t *testing.T) {
	var logs strings.Builder
	s := New(Options{LogWriter: &logs})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"c": "int x;", "queries": ["x"]}`
	req, _ := http.NewRequest("POST", ts.URL+"/v1/solve", strings.NewReader(body))
	req.Header.Set("X-Request-Id", "caller-id-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-id-123" {
		t.Fatalf("caller ID not echoed: %q", got)
	}
	if !strings.Contains(logs.String(), `"request_id":"caller-id-123"`) {
		t.Fatalf("request log missing the ID:\n%s", logs.String())
	}

	// No header → a generated 16-hex-char ID.
	resp2, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); len(got) != 16 {
		t.Fatalf("generated ID malformed: %q", got)
	}

	// A hostile ID (oversized; the Go client already refuses to send
	// control characters) is replaced, not echoed.
	req3, _ := http.NewRequest("POST", ts.URL+"/v1/solve", strings.NewReader(body))
	req3.Header.Set("X-Request-Id", strings.Repeat("x", 200))
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-Id"); len(got) != 16 {
		t.Fatalf("oversized ID not replaced with a generated one: %q", got)
	}
}

// TestPprofGatedByOption: /debug/pprof exists only when enabled.
func TestPprofGatedByOption(t *testing.T) {
	off := httptest.NewServer(New(Options{}).Handler())
	defer off.Close()
	if code := getJSON(t, off, "/debug/pprof/", nil); code != http.StatusNotFound {
		t.Fatalf("pprof reachable while disabled: %d", code)
	}

	on := httptest.NewServer(New(Options{EnablePprof: true}).Handler())
	defer on.Close()
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("pprof index broken: %d\n%s", resp.StatusCode, body)
	}
}

// TestSolveTraceAttachedToRequestID: with Options.Trace set, the solve's
// spans land on a lane named after the request's ID.
func TestSolveTraceAttachedToRequestID(t *testing.T) {
	tr := pip.NewTrace("serve-test", 1<<12)
	s := New(Options{Trace: tr})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("POST", ts.URL+"/v1/solve",
		strings.NewReader(`{"c": "int x; int *p = &x;", "queries": ["p"]}`))
	req.Header.Set("X-Request-Id", "trace-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	tree := tr.Tree()
	if !strings.Contains(tree, "req-trace-me:") {
		t.Fatalf("no request lane in trace:\n%s", tree)
	}
	for _, want := range []string{"solve", "propagate"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("request lane missing %q spans:\n%s", want, tree)
		}
	}
}
