package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
)

// moduleRequest is the common module-bearing part of analysis requests:
// exactly one of MIR or C must be set. Config and Budget override the
// server defaults per request; the ?budget=, ?config=, and ?timeout=
// query parameters override the body fields in turn (so curl one-liners
// can reuse a canned body).
type moduleRequest struct {
	// Name labels the module in logs and responses (mini-C diagnostics
	// use it as the file name).
	Name string `json:"name,omitempty"`
	// MIR is the module in MIR textual IR.
	MIR string `json:"mir,omitempty"`
	// C is the module in mini-C source.
	C string `json:"c,omitempty"`
	// Config names a solver configuration, e.g. "IP+WL(FIFO)+PIP".
	Config string `json:"config,omitempty"`
	// Budget bounds the solve, e.g. "100ms", "5000f", "100ms,5000f".
	Budget string `json:"budget,omitempty"`
}

// solveRequest asks for points-to facts about one module.
type solveRequest struct {
	moduleRequest
	// Queries names values to report points-to sets for ("global",
	// "func.local", "func.$ret"). Empty means: return the full dump.
	Queries []string `json:"queries,omitempty"`
}

// pointsToEntry is one query's answer.
type pointsToEntry struct {
	// Targets are the named memory locations the value may point to.
	Targets []string `json:"targets"`
	// External reports that the value may additionally point to external
	// (unknown) memory — always true on degraded solves.
	External bool `json:"external"`
	// Error reports a name-resolution failure for this query only.
	Error string `json:"error,omitempty"`
}

// solveResponse is the answer to a solveRequest.
type solveResponse struct {
	Name     string `json:"name,omitempty"`
	Config   string `json:"config"`
	Degraded bool   `json:"degraded"`
	CacheHit bool   `json:"cache_hit"`
	// DiskHit marks a cache hit that was served from the persistent
	// store (fingerprint-verified) rather than resident memory.
	DiskHit bool `json:"disk_hit,omitempty"`
	// DurationNS is the solve time in nanoseconds (0 on cache hits).
	DurationNS int64                    `json:"duration_ns"`
	PointsTo   map[string]pointsToEntry `json:"points_to,omitempty"`
	// Escaped lists every externally accessible memory object.
	Escaped []string `json:"escaped"`
	// Dump is the full human-readable points-to report, returned when the
	// request named no queries.
	Dump string `json:"dump,omitempty"`
	// Demand reports how much of the problem a demand-driven (?ptr=)
	// analysis explored; omitted for exhaustive solves.
	Demand *pip.DemandStats `json:"demand,omitempty"`
}

// aliasRequest asks pairwise alias queries about one module.
type aliasRequest struct {
	moduleRequest
	// Pairs are value-name pairs to run through the combined
	// Andersen+BasicAA analysis.
	Pairs [][2]string `json:"pairs"`
	// Size is the access width in bytes for every query; <= 0 means 1.
	Size int64 `json:"size,omitempty"`
}

// aliasAnswer is one pair's verdict.
type aliasAnswer struct {
	A      string `json:"a"`
	B      string `json:"b"`
	Result string `json:"result,omitempty"` // NoAlias | MayAlias | MustAlias
	Error  string `json:"error,omitempty"`
}

// aliasResponse is the answer to an aliasRequest.
type aliasResponse struct {
	Name     string        `json:"name,omitempty"`
	Config   string        `json:"config"`
	Degraded bool          `json:"degraded"`
	CacheHit bool          `json:"cache_hit"`
	Answers  []aliasAnswer `json:"answers"`
	// Demand reports how much of the problem a demand-driven (?ptr=)
	// analysis explored; omitted for exhaustive solves. Alias answers on a
	// demand slice stay sound: unexplored values answer conservatively.
	Demand *pip.DemandStats `json:"demand,omitempty"`
}

// errBadRequest marks client errors (malformed body, unparsable module,
// unknown configuration) that must map to 400, not 500.
var errBadRequest = errors.New("bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errBadRequest}, args...)...)
}

// decode reads a JSON body into v with the configured size bound.
func (s *Server) decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("invalid JSON body: %v", err)
	}
	return nil
}

// requestConfig resolves the solver configuration: the body field, then
// the ?config= query parameter, over the server default. The budget is
// not folded in here (see analyze and handleResolve — they differ on it).
func (s *Server) requestConfig(r *http.Request, req *moduleRequest) (pip.Config, bool, error) {
	cfg := s.opts.Config
	named := false
	if name := req.Config; name != "" {
		c, err := pip.ParseConfig(name)
		if err != nil {
			return cfg, false, badRequestf("config: %v", err)
		}
		cfg, named = c, true
	}
	if name := r.URL.Query().Get("config"); name != "" {
		c, err := pip.ParseConfig(name)
		if err != nil {
			return cfg, false, badRequestf("config: %v", err)
		}
		cfg, named = c, true
	}
	return cfg, named, nil
}

// parseModule compiles or parses the request's module (exactly one of
// "mir" or "c" must be set).
func parseModule(req *moduleRequest) (*pip.Module, error) {
	switch {
	case req.MIR != "" && req.C != "":
		return nil, badRequestf(`both "mir" and "c" set; send exactly one`)
	case req.MIR != "":
		m, err := pip.ParseIR(req.MIR)
		if err != nil {
			return nil, badRequestf("module: %v", err)
		}
		return m, nil
	case req.C != "":
		name := req.Name
		if name == "" {
			name = "<request>"
		}
		m, err := pip.CompileC(name, req.C)
		if err != nil {
			return nil, badRequestf("module: %v", err)
		}
		return m, nil
	default:
		return nil, badRequestf(`module missing: send "mir" or "c"`)
	}
}

// analyze runs the shared request pipeline: resolve configuration and
// budget (body fields, then query parameters, then the request deadline),
// compile or parse the module, and solve it on the shared engine. One or
// more ?ptr= query parameters switch the solve to demand-driven mode:
// only the constraint slice reachable from the named root pointers is
// solved, and every other variable soundly answers Ω.
func (s *Server) analyze(r *http.Request, req *moduleRequest) (pip.BatchResult, pip.Config, error) {
	cfg := s.opts.Config
	// Chaos hook: a handler fault fails the request after admission — the
	// case the drain and breaker guarantees are really about. An injected
	// error maps to 500; an injected panic unwinds to the recovery
	// middleware (releasing admission slots on the way) and becomes a 500
	// there.
	if err := faults.Inject(faults.ServeHandler); err != nil {
		return pip.BatchResult{}, cfg, fmt.Errorf("handler fault: %w", err)
	}
	cfg, _, err := s.requestConfig(r, req)
	if err != nil {
		return pip.BatchResult{}, cfg, err
	}
	q := r.URL.Query()

	budget := s.opts.DefaultBudget
	for _, src := range []string{req.Budget, q.Get("budget")} {
		if src == "" {
			continue
		}
		b, err := pip.ParseBudget(src)
		if err != nil {
			return pip.BatchResult{}, cfg, badRequestf("budget: %v", err)
		}
		budget = b
	}
	ctx := r.Context()
	if ts := q.Get("timeout"); ts != "" {
		d, err := time.ParseDuration(ts)
		if err != nil || d <= 0 {
			return pip.BatchResult{}, cfg, badRequestf("timeout: bad duration %q", ts)
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	// The effective budget is the tightest of: server default, request
	// budget, and the request deadline — so a solve never outlives its
	// caller, it degrades soundly instead.
	cfg.Budget = pip.BudgetFromContext(ctx, budget)

	m, err := parseModule(req)
	if err != nil {
		return pip.BatchResult{}, cfg, err
	}
	// Attach the solve to a request-scoped trace lane. The -trace file
	// recorder (opts.Trace) keeps precedence when configured — its captured
	// file must stay cross-referenceable against request logs as before —
	// otherwise the per-trace-ID recorder behind GET /debug/trace gets the
	// solve's phase spans.
	rt := reqTraceFrom(r.Context())
	var lane pip.TraceLane
	if s.opts.Trace != nil {
		if id := requestIDFrom(r.Context()); id != "" {
			lane = s.opts.Trace.NewTrack("req-" + id)
		}
	} else if rt != nil {
		lane = rt.lane
	}
	ptrs := q["ptr"]
	var res pip.BatchResult
	var solveSpan obs.Span
	if rt != nil {
		solveSpan = rt.lane.Begin("solve", obs.S("config", cfg.String()))
	}
	solveStart := time.Now()
	if len(ptrs) > 0 {
		// Demand mode. Root names are validated first so a bad name is the
		// client's 400, not an analysis failure.
		if _, _, err := pip.DemandRoots(m, s.opts.Summaries, ptrs); err != nil {
			solveSpan.End()
			return pip.BatchResult{}, cfg, badRequestf("%v", err)
		}
		s.demandReqs.Add(1)
		res, err = s.eng.AnalyzeDemand(m, cfg, s.opts.Summaries, ptrs)
	} else {
		res = s.eng.AnalyzeTraced(m, cfg, s.opts.Summaries, lane)
	}
	s.solveLatency.Observe(time.Since(solveStart).Seconds())
	solveSpan.End(
		obs.N("cache_hit", b2i(res.CacheHit)),
		obs.N("disk_hit", b2i(res.DiskHit)),
		obs.N("degraded", b2i(res.Degraded)))
	if res.Err != nil {
		// Engine-level failure (solver error or recovered panic): the
		// module parsed, so this is on the server, not the client.
		return pip.BatchResult{}, cfg, fmt.Errorf("analysis failed: %v", res.Err)
	}
	if res.Degraded {
		s.degraded.Add(1)
	}
	return res, cfg, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := s.decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, cfg, err := s.analyze(r, &req.moduleRequest)
	if err != nil {
		s.writeAnalyzeError(w, err)
		return
	}
	if res.Degraded {
		markDegraded(w)
	}
	resp := solveResponse{
		Name:       req.Name,
		Config:     cfg.String(),
		Degraded:   res.Degraded,
		CacheHit:   res.CacheHit,
		DiskHit:    res.DiskHit,
		DurationNS: res.Duration.Nanoseconds(),
		Escaped:    res.Result.ExternallyAccessible(),
		Demand:     res.Demand,
	}
	if len(req.Queries) == 0 {
		resp.Dump = res.Result.Dump()
	} else {
		resp.PointsTo = make(map[string]pointsToEntry, len(req.Queries))
		for _, name := range req.Queries {
			targets, external, err := res.Result.PointsTo(name)
			if err != nil {
				resp.PointsTo[name] = pointsToEntry{Error: err.Error()}
				continue
			}
			if targets == nil {
				targets = []string{}
			}
			resp.PointsTo[name] = pointsToEntry{Targets: targets, External: external}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAlias(w http.ResponseWriter, r *http.Request) {
	var req aliasRequest
	if err := s.decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Pairs) == 0 {
		s.writeError(w, http.StatusBadRequest, `"pairs" missing or empty`)
		return
	}
	res, cfg, err := s.analyze(r, &req.moduleRequest)
	if err != nil {
		s.writeAnalyzeError(w, err)
		return
	}
	if res.Degraded {
		markDegraded(w)
	}
	resp := aliasResponse{
		Name:     req.Name,
		Config:   cfg.String(),
		Degraded: res.Degraded,
		CacheHit: res.CacheHit,
		Answers:  make([]aliasAnswer, 0, len(req.Pairs)),
		Demand:   res.Demand,
	}
	for _, pair := range req.Pairs {
		ans := aliasAnswer{A: pair[0], B: pair[1]}
		verdict, err := res.Result.Alias(pair[0], pair[1], req.Size)
		if err != nil {
			ans.Error = err.Error()
		} else {
			ans.Result = verdict.String()
		}
		resp.Answers = append(resp.Answers, ans)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// resolveRequest (re-)submits a version of a module to an incremental
// session. An empty handle starts a new session (lineage); the returned
// handle identifies it on later resubmissions, which diff the constraint
// sets and reuse, resume, or re-solve as the edit allows.
type resolveRequest struct {
	moduleRequest
	// Handle identifies the incremental session. Empty creates one.
	Handle string `json:"handle,omitempty"`
	// Queries names values to report points-to sets for, like /v1/solve.
	Queries []string `json:"queries,omitempty"`
}

// resolveResponse is the answer to a resolveRequest.
type resolveResponse struct {
	Name   string `json:"name,omitempty"`
	Handle string `json:"handle"`
	Config string `json:"config"`
	// Generation counts solves in this session's lineage, from 0.
	Generation int `json:"generation"`
	// Incremental reports which path the re-solve took (reuse, resume,
	// fallback) and how many constraints it reused.
	Incremental *pip.IncrementalStats    `json:"incremental"`
	Degraded    bool                     `json:"degraded"`
	DurationNS  int64                    `json:"duration_ns"`
	PointsTo    map[string]pointsToEntry `json:"points_to,omitempty"`
	Escaped     []string                 `json:"escaped"`
	Dump        string                   `json:"dump,omitempty"`
}

// handleResolve serves incremental re-analysis. The session's solver
// configuration is fixed when the session is created (first request);
// naming a different configuration on a later resubmission is an error,
// because the persisted propagation state is only valid for the lineage's
// own configuration. Per-request budgets and timeouts are deliberately
// not folded in: a budget would make the configuration non-resumable, so
// budgeted incremental analysis must be requested at session creation.
func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	var req resolveRequest
	if err := s.decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Chaos hook, matching the one in analyze.
	if err := faults.Inject(faults.ServeHandler); err != nil {
		s.writeAnalyzeError(w, fmt.Errorf("handler fault: %w", err))
		return
	}
	cfg, named, err := s.requestConfig(r, &req.moduleRequest)
	if err != nil {
		s.writeAnalyzeError(w, err)
		return
	}
	if src := req.Budget; src != "" {
		b, err := pip.ParseBudget(src)
		if err != nil {
			s.writeAnalyzeError(w, badRequestf("budget: %v", err))
			return
		}
		cfg.Budget = b
	}
	m, err := parseModule(&req.moduleRequest)
	if err != nil {
		s.writeAnalyzeError(w, err)
		return
	}

	// create/get acquire a reference that keeps the session out of the
	// evictor's reach for the whole resolve: without it, LRU churn from
	// concurrent session creation could free this lineage's checkpoint
	// state mid-solve and pair the response with a dead handle.
	var sess *session
	if req.Handle == "" {
		sess = s.sessions.create(s.eng, cfg)
	} else {
		var ok bool
		sess, ok = s.sessions.get(req.Handle)
		if !ok {
			s.writeError(w, http.StatusNotFound, "unknown or expired session handle; resubmit without one to start a new session")
			return
		}
		if named && cfg.String() != sess.cfg.String() {
			s.sessions.release(sess)
			s.writeAnalyzeError(w, badRequestf("config %q differs from the session's %q; a lineage's configuration is fixed at creation", cfg, sess.cfg))
			return
		}
	}
	defer s.sessions.release(sess)

	var solveSpan obs.Span
	if rt := reqTraceFrom(r.Context()); rt != nil {
		solveSpan = rt.lane.Begin("resolve", obs.S("config", sess.cfg.String()))
	}
	sess.mu.Lock()
	solveStart := time.Now()
	res := sess.sess.AnalyzeWithSummaries(m, s.opts.Summaries)
	s.solveLatency.Observe(time.Since(solveStart).Seconds())
	generation := sess.sess.Generation()
	sess.mu.Unlock()
	solveSpan.End(
		obs.N("generation", int64(generation)),
		obs.N("degraded", b2i(res.Degraded)))
	if res.Err != nil {
		s.writeAnalyzeError(w, fmt.Errorf("analysis failed: %v", res.Err))
		return
	}
	if res.Degraded {
		s.degraded.Add(1)
		markDegraded(w)
	}
	if inc := res.Incremental; inc != nil {
		switch {
		case inc.ReusedSolution:
			s.incrReused.Add(1)
		case inc.Resumed:
			s.incrResumed.Add(1)
		default:
			s.incrFallback.Add(1)
		}
		s.incrReusedC.Observe(float64(inc.Reused))
	}

	resp := resolveResponse{
		Name:        req.Name,
		Handle:      sess.id,
		Config:      sess.cfg.String(),
		Generation:  generation,
		Incremental: res.Incremental,
		Degraded:    res.Degraded,
		DurationNS:  res.Duration.Nanoseconds(),
		Escaped:     res.Result.ExternallyAccessible(),
	}
	if len(req.Queries) == 0 {
		resp.Dump = res.Result.Dump()
	} else {
		resp.PointsTo = make(map[string]pointsToEntry, len(req.Queries))
		for _, name := range req.Queries {
			targets, external, err := res.Result.PointsTo(name)
			if err != nil {
				resp.PointsTo[name] = pointsToEntry{Error: err.Error()}
				continue
			}
			if targets == nil {
				targets = []string{}
			}
			resp.PointsTo[name] = pointsToEntry{Targets: targets, External: external}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// writeAnalyzeError maps pipeline errors to 400 (client fault) or 500.
func (s *Server) writeAnalyzeError(w http.ResponseWriter, err error) {
	if errors.Is(err, errBadRequest) {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeError(w, http.StatusInternalServerError, err.Error())
}

// healthzResponse is the /healthz body.
type healthzResponse struct {
	Status   string `json:"status"` // "ok" | "draining"
	InFlight int64  `json:"in_flight"`
	Queued   int64  `json:"queued"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{Status: "ok", InFlight: s.running.Load(), Queued: s.queued.Load()}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, resp)
}

// metricsResponse is the /metrics body: the engine's cumulative stats
// (including aggregated solver telemetry), cache occupancy against its
// cap, and the server's request counters.
type metricsResponse struct {
	Engine pip.EngineStats `json:"engine"`
	Cache  cacheMetrics    `json:"cache"`
	Server serverMetrics   `json:"server"`
}

type cacheMetrics struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Evictions int64 `json:"evictions"`
	Hits      int   `json:"hits"`
}

type serverMetrics struct {
	Accepted    int64 `json:"accepted"`
	Rejected    int64 `json:"rejected"`
	BadRequests int64 `json:"bad_requests"`
	Failures    int64 `json:"failures"`
	Degraded    int64 `json:"degraded"`
	InFlight    int64 `json:"in_flight"`
	Queued      int64 `json:"queued"`
	Draining    bool  `json:"draining"`
}

// handleMetrics serves Prometheus text exposition format (0.0.4) by
// default; the original JSON body remains available at ?format=json for
// existing dashboards and the pipserve smoke check.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		s.handleMetricsJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeProm(w)
}

// writeProm renders the full Prometheus exposition to w. Split out of
// handleMetrics because the flight recorder embeds the same scrape in
// every anomaly dump — a dump is "what did the server look like when
// this happened", and the answer is the metrics page.
func (s *Server) writeProm(w io.Writer) {
	st := s.eng.Stats()
	p := obs.NewPromWriter(w)

	// Request-path latency split: queue wait vs. solve time.
	p.Histogram("pip_solve_latency_seconds",
		"Time spent analyzing one request's module on the shared engine (including cache hits).",
		s.solveLatency)
	p.Histogram("pip_queue_wait_seconds",
		"Time admitted requests waited for a run slot.",
		s.queueWait)

	// Admission control.
	p.Counter("pip_requests_accepted_total", "Admitted analysis requests.", float64(s.accepted.Load()))
	p.Counter("pip_requests_rejected_total", "Requests refused with 429 by admission control.", float64(s.rejected.Load()))
	p.Counter("pip_requests_bad_total", "Requests refused with a 4xx other than 429.", float64(s.badRequests.Load()))
	p.Counter("pip_requests_failed_total", "Requests answered with a 5xx.", float64(s.failures.Load()))
	p.Counter("pip_solves_degraded_total", "Solves that returned the omega-degraded solution.", float64(s.degraded.Load()))
	p.Gauge("pip_running_solves", "Solves currently holding a run slot.", float64(s.running.Load()))
	p.Gauge("pip_queued_requests", "Requests currently waiting for a run slot.", float64(s.queued.Load()))
	p.Gauge("pip_draining", "1 while the server is draining for shutdown.", b2f(s.draining.Load()))

	// Solution cache.
	p.Gauge("pip_cache_entries", "Resident cached solutions.", float64(st.CacheEntries))
	p.Gauge("pip_cache_capacity", "Configured cache bound (0 = unbounded).", float64(s.eng.CacheCap()))
	p.Counter("pip_cache_hits_total", "Solves served from the solution cache.", float64(st.CacheHits))
	p.Counter("pip_cache_evictions_total", "Cached solutions dropped by the LRU bound.", float64(st.CacheEvictions))

	// Persistent solution store (the disk tier under the memory LRU).
	p.Counter("pip_store_hits_total", "Solves served from the persistent store after a memory miss.", float64(st.DiskHits))
	p.Counter("pip_store_flushed_total", "Solutions flushed to the persistent store (eviction write-behind plus drain).", float64(st.StoreFlushed))
	p.Gauge("pip_store_entries", "Live entries in the persistent store (0 when no store is attached).", float64(st.StoreEntries))
	p.Counter("pip_store_corrupt_total", "Store entries that failed CRC/decode/fingerprint verification and were treated as misses.", float64(st.StoreCorrupt))

	// Incremental re-solve (/v1/resolve sessions) and demand-driven
	// (?ptr=) queries.
	p.CounterVec("pip_incremental_requests_total",
		"Incremental /v1/resolve requests by path taken: checkpoint resume, empty-delta solution reuse, or from-scratch fallback.",
		"outcome", map[string]float64{
			"resumed":  float64(s.incrResumed.Load()),
			"reused":   float64(s.incrReused.Load()),
			"fallback": float64(s.incrFallback.Load()),
		})
	p.Histogram("pip_incremental_reused_constraints",
		"Constraints carried over from the previous generation per incremental request.",
		s.incrReusedC)
	p.Counter("pip_demand_requests_total", "Demand-driven (?ptr=) analysis requests.", float64(s.demandReqs.Load()))
	resident, evicted := s.sessions.stats()
	p.Gauge("pip_sessions", "Resident incremental sessions.", float64(resident))
	p.Counter("pip_session_evictions_total", "Incremental sessions dropped by the LRU bound.", float64(evicted))

	// Resilience: the circuit breaker, the engine's retry/watchdog/memory
	// guard, cache integrity, and injected chaos.
	state, trips := s.breaker.snapshot()
	p.Gauge("pip_breaker_state", "Circuit breaker state: 0 closed, 1 open, 2 half-open.", float64(state))
	p.Counter("pip_breaker_trips_total", "Times the circuit breaker opened.", float64(trips))
	p.Counter("pip_breaker_rejected_total", "Requests shed with 503 by the open breaker.", float64(s.breakerRejected.Load()))
	p.Counter("pip_handler_panics_total", "Handler panics recovered into 500s.", float64(s.panics.Load()))
	p.Counter("pip_retries_total", "Transiently failed jobs re-solved by the engine.", float64(st.Retries))
	p.Counter("pip_retry_successes_total", "Retried jobs that then succeeded.", float64(st.RetrySuccesses))
	p.Counter("pip_watchdog_fired_total", "Stuck solves force-degraded to the sound omega solution by the watchdog.", float64(st.WatchdogFired))
	p.Counter("pip_budget_tightened_total", "Solves switched to the tight budget by the soft memory guard.", float64(st.MemTightened))
	p.Counter("pip_cache_corrupt_total", "Cache entries that failed content-hash verification and were dropped.", float64(st.CacheCorrupt))
	p.Counter("pip_coalesced_total", "Jobs that shared an identical in-flight solve instead of re-solving.", float64(st.Coalesced))
	s.faultMu.Lock()
	injected := make(map[[2]string]float64, len(s.faultCounts))
	for k, v := range s.faultCounts {
		injected[k] = float64(v)
	}
	s.faultMu.Unlock()
	if len(injected) > 0 {
		p.CounterVec2("pip_faults_injected_total",
			"Faults injected by the chaos registry, by injection point and kind.",
			"point", "kind", injected)
	}

	// Engine counters and the per-rule firing breakdown.
	p.Counter("pip_engine_jobs_total", "Jobs executed by the shared engine.", float64(st.Jobs))
	p.Counter("pip_engine_failures_total", "Engine jobs that failed (solver error or recovered panic).", float64(st.Failures))
	p.Counter("pip_engine_stratified_total", "Solved jobs whose solve ran stratified parallel presaturation.", float64(st.Stratified))
	p.CounterVec("pip_rule_firings_total",
		"Inference-rule applications per rule family, aggregated across all solves.",
		"rule", map[string]float64{
			"trans": float64(st.Telemetry.Firings.Trans),
			"load":  float64(st.Telemetry.Firings.Load),
			"store": float64(st.Telemetry.Firings.Store),
			"call":  float64(st.Telemetry.Firings.Call),
			"flag":  float64(st.Telemetry.Firings.Flag),
		})

	// Two different time totals, deliberately both exported: busy-span
	// wall (elapsed time with >= 1 job running; overlap counted once) vs.
	// summed per-solve phase durations (CPU time; overlapping solves sum,
	// so phases can legitimately exceed the busy span). See
	// core.Telemetry.Merge.
	p.Counter("pip_engine_busy_seconds_total",
		"Busy-span wall clock: elapsed time during which at least one job was running.",
		st.Wall.Seconds())
	p.Counter("pip_engine_cpu_seconds_total",
		"Sum of per-job solve durations (sequential-equivalent cost).",
		st.CPU.Seconds())
	p.CounterVec("pip_engine_phase_seconds_total",
		"Per-phase solver time summed across solves (CPU time: may exceed the busy span).",
		"phase", map[string]float64{
			"offline":     st.Telemetry.Offline.Seconds(),
			"propagate":   st.Telemetry.Propagate.Seconds(),
			"collapse":    st.Telemetry.Collapse.Seconds(),
			"presaturate": st.Telemetry.Presaturate.Seconds(),
		})
	p.Gauge("pip_engine_worklist_peak", "Highest worklist depth seen by any solve.", float64(st.Telemetry.WorklistPeak))
	p.Gauge("pip_engine_workers", "Configured engine pool bound.", float64(st.Workers))

	// Distributed tracing and the anomaly flight recorder.
	dropped := s.traceDropped.Load()
	if s.opts.Trace != nil {
		dropped += s.opts.Trace.Dropped()
	}
	p.Counter("pip_trace_dropped_total", "Trace records dropped by saturated trace rings (per-request traces plus the -trace file recorder).", float64(dropped))
	tracesResident, tracesEvicted := s.traces.stats()
	p.Gauge("pip_traces", "Distinct trace IDs resident for GET /debug/trace.", float64(tracesResident))
	p.Counter("pip_trace_evictions_total", "Trace IDs evicted from the bounded trace index.", float64(tracesEvicted))
	p.Counter("pip_flightrec_dumps_total", "Anomaly dumps taken by the flight recorder over the process lifetime.", float64(s.flight.DumpCount()))
	p.Counter("pip_flightrec_suppressed_total", "Flight-recorder triggers swallowed by the per-reason cooldown.", float64(s.flight.Suppressed()))
	if err := p.Err(); err != nil {
		s.log.Error("write metrics", "err", err)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter) {
	st := s.eng.Stats()
	s.writeJSON(w, http.StatusOK, metricsResponse{
		Engine: st,
		Cache: cacheMetrics{
			Entries:   st.CacheEntries,
			Capacity:  s.eng.CacheCap(),
			Evictions: st.CacheEvictions,
			Hits:      st.CacheHits,
		},
		Server: serverMetrics{
			Accepted:    s.accepted.Load(),
			Rejected:    s.rejected.Load(),
			BadRequests: s.badRequests.Load(),
			Failures:    s.failures.Load(),
			Degraded:    s.degraded.Load(),
			InFlight:    s.running.Load(),
			Queued:      s.queued.Load(),
			Draining:    s.draining.Load(),
		},
	})
}
