package serve

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/pip-analysis/pip"
)

// TestSessionStoreCapClamped is the regression test for the cap<=0 spin:
// create's eviction loop used to hunt forever for a victim in an empty
// map when the cap was zero or negative. The store must clamp to one
// resident session and keep serving.
func TestSessionStoreCapClamped(t *testing.T) {
	eng := pip.NewEngine(pip.BatchOptions{})
	for _, cap := range []int{0, -3} {
		st := newSessionStore(cap)
		done := make(chan *session, 1)
		go func() { done <- st.create(eng, pip.DefaultConfig()) }()
		select {
		case s := <-done:
			st.release(s)
		case <-time.After(5 * time.Second):
			t.Fatalf("create(cap=%d) hung: eviction loop spinning on an empty store", cap)
		}
		// The clamped store behaves like cap=1: each new idle session
		// evicts the previous one.
		s2 := st.create(eng, pip.DefaultConfig())
		st.release(s2)
		if resident, evictions := st.stats(); resident != 1 || evictions != 1 {
			t.Fatalf("cap=%d: resident=%d evictions=%d, want 1/1", cap, resident, evictions)
		}
	}
}

// TestBusySessionNotEvicted: a session with an in-flight resolve (refs
// held) must survive arbitrary churn; evicting it would free checkpoint
// state out from under the resolver. Idle again, it is evictable.
func TestBusySessionNotEvicted(t *testing.T) {
	eng := pip.NewEngine(pip.BatchOptions{})
	cfg := pip.DefaultConfig()
	st := newSessionStore(1)

	busy := st.create(eng, cfg) // ref held: simulates an in-flight resolve

	// Churn past the cap. The only resident session is busy, so the store
	// overflows transiently instead of evicting it.
	others := make([]*session, 3)
	for i := range others {
		others[i] = st.create(eng, cfg)
	}
	if _, ok := st.get(busy.id); !ok {
		t.Fatal("busy session evicted by churn")
	}
	st.release(busy) // drop the get ref

	// Release everything; the next create now finds idle victims and
	// shrinks the store back under its cap, taking the busy-no-more
	// session with it.
	st.release(busy)
	for _, s := range others {
		st.release(s)
	}
	last := st.create(eng, cfg)
	st.release(last)
	if resident, _ := st.stats(); resident != 1 {
		t.Fatalf("store did not shrink to cap once idle: resident=%d", resident)
	}
	if _, ok := st.get(busy.id); ok {
		t.Fatal("idle session survived eviction pressure meant for it")
	}
}

// TestSessionStoreConcurrentChurn holds a reference across concurrent
// create/release churn and asserts the held session stays resident the
// whole time. Run under -race this also proves the refcount and LRU
// bookkeeping are properly serialized.
func TestSessionStoreConcurrentChurn(t *testing.T) {
	eng := pip.NewEngine(pip.BatchOptions{})
	cfg := pip.DefaultConfig()
	st := newSessionStore(2)

	hot := st.create(eng, cfg) // ref held for the whole test

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := st.create(eng, cfg)
				st.release(s)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s, ok := st.get(hot.id)
		if !ok {
			t.Error("session with a held reference was evicted")
			break
		}
		st.release(s)
	}
	close(stop)
	wg.Wait()
	st.release(hot)
}

// TestResolveConcurrentChurn drives /v1/resolve from many clients over a
// tiny session store under -race: lineage resubmissions race with
// evictions. Every response must be definitive — 200 (resolved) or 404
// (handle evicted between requests) — never a 5xx from state freed under
// a live resolve.
func TestResolveConcurrentChurn(t *testing.T) {
	s := New(Options{MaxSessions: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				var r0 resolveResponse
				code := postJSON(t, ts, "/v1/resolve", resolveRequest{
					moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
				}, &r0)
				if code != 200 {
					errs <- "create returned non-200"
					return
				}
				// Resubmit the lineage twice while the other workers churn
				// the 2-slot store underneath it.
				for j := 0; j < 2; j++ {
					code = postJSON(t, ts, "/v1/resolve", resolveRequest{
						moduleRequest: moduleRequest{Name: "t.c", C: resolveSrcEdit},
						Handle:        r0.Handle,
					}, nil)
					if code != 200 && code != 404 {
						errs <- "resubmit returned a non-definitive code"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// All references released: the store is back at (or under) cap.
	if resident, _ := s.sessions.stats(); resident > 2 {
		t.Fatalf("store above cap after churn settled: resident=%d", resident)
	}
}
