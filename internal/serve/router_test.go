package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/pip-analysis/pip/internal/obs"
)

// newCluster starts n real pipserve backends and a router over them,
// returning the router's test server and the backend handles for
// killing and inspection.
func newCluster(t *testing.T, n int, ropts RouterOptions) (*Router, *httptest.Server, []*Server, []*httptest.Server) {
	t.Helper()
	servers := make([]*Server, n)
	backends := make([]*httptest.Server, n)
	ropts.Backends = make([]string, n)
	for i := range servers {
		servers[i] = New(Options{})
		backends[i] = httptest.NewServer(servers[i].Handler())
		ropts.Backends[i] = backends[i].URL
		t.Cleanup(backends[i].Close)
	}
	rt := NewRouter(ropts)
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts, servers, backends
}

func TestRouterCandidatesDeterministicAndCovering(t *testing.T) {
	rt := NewRouter(RouterOptions{
		Backends: []string{"http://a", "http://b", "http://c"},
		Probe:    ProbeOptions{Disabled: true},
	})
	defer rt.Close()
	snap := rt.snap.Load()
	owners := make(map[string]int)
	for i := 0; i < 1000; i++ {
		probe := &routeProbe{C: fmt.Sprintf("int x%d;", i)}
		key := routeKey(probe, "")
		c1 := snap.candidates(key, nil)
		c2 := snap.candidates(key, nil)
		if len(c1) != 3 || fmt.Sprint(c1) != fmt.Sprint(c2) {
			t.Fatalf("candidates not deterministic or incomplete: %v vs %v", c1, c2)
		}
		seen := map[*routerBackend]bool{}
		for _, b := range c1 {
			if seen[b] {
				t.Fatalf("duplicate backend in candidate order: %v", c1)
			}
			seen[b] = true
		}
		owners[c1[0].url]++
	}
	// Consistent hashing with 64 vnodes each: every backend owns a real
	// share of the keyspace (no precise split required, just coverage).
	for u, n := range owners {
		if n < 50 {
			t.Fatalf("backend %s owns only %d/1000 keys — ring badly skewed: %v", u, n, owners)
		}
	}
	if len(owners) != 3 {
		t.Fatalf("only %d backends own keys: %v", len(owners), owners)
	}
}

// TestRouterAffinityHitsPeerCache: identical modules always land on the
// same shard, so the second request is that shard's cache hit — the
// cluster consults the peer's cache instead of re-solving locally.
func TestRouterAffinityHitsPeerCache(t *testing.T) {
	_, ts, servers, _ := newCluster(t, 3, RouterOptions{})
	body := solveRequest{moduleRequest: moduleRequest{Name: "t.c", C: solveSrc}}

	var r1, r2 solveResponse
	if code := postJSON(t, ts, "/v1/solve", body, &r1); code != http.StatusOK {
		t.Fatalf("first solve returned %d", code)
	}
	if code := postJSON(t, ts, "/v1/solve", body, &r2); code != http.StatusOK {
		t.Fatalf("second solve returned %d", code)
	}
	if r1.CacheHit {
		t.Fatal("first request cannot be a cache hit")
	}
	if !r2.CacheHit {
		t.Fatal("second identical request missed the owning shard's cache — affinity broken")
	}
	// Exactly one backend saw both requests.
	busy := 0
	for _, s := range servers {
		if n := s.accepted.Load(); n == 2 {
			busy++
		} else if n != 0 {
			t.Fatalf("backend saw %d requests, want 0 or 2", n)
		}
	}
	if busy != 1 {
		t.Fatalf("%d backends saw traffic for one module, want exactly 1", busy)
	}
}

// TestRouterResolveHandleAffinity: a lineage's resubmissions follow its
// handle to the backend holding the session state, whatever the edited
// module hashes to.
func TestRouterResolveHandleAffinity(t *testing.T) {
	_, ts, _, _ := newCluster(t, 3, RouterOptions{})

	var r0 resolveResponse
	if code := postJSON(t, ts, "/v1/resolve", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
	}, &r0); code != http.StatusOK {
		t.Fatalf("create returned %d", code)
	}
	if r0.Handle == "" || r0.Generation != 0 {
		t.Fatalf("bad first resolve: %+v", r0)
	}
	// Edited resubmission: the module content changed (would hash
	// elsewhere) but the handle pins it to the owner.
	var r1 resolveResponse
	if code := postJSON(t, ts, "/v1/resolve", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: resolveSrcEdit},
		Handle:        r0.Handle,
	}, &r1); code != http.StatusOK {
		t.Fatalf("resubmit returned %d", code)
	}
	if r1.Handle != r0.Handle || r1.Generation != 1 {
		t.Fatalf("lineage did not continue on the owning shard: %+v", r1)
	}
}

// TestRouterReroutesAroundDeadBackend: with one of three shards dead,
// every request still gets an exact answer from a surviving shard.
func TestRouterReroutesAroundDeadBackend(t *testing.T) {
	rt, ts, _, backends := newCluster(t, 3, RouterOptions{Breaker: fastBreaker()})
	backends[1].Close()

	for i := 0; i < 9; i++ {
		var resp solveResponse
		body := solveRequest{moduleRequest: moduleRequest{Name: "t.c",
			C: fmt.Sprintf("static int x%d; int *p%d = &x%d;", i, i, i)}}
		if code := postJSON(t, ts, "/v1/solve", body, &resp); code != http.StatusOK {
			t.Fatalf("request %d returned %d with a dead shard", i, code)
		}
		if resp.Degraded {
			t.Fatalf("request %d degraded with two healthy shards up", i)
		}
	}
	// ~1/3 of the keyspace belonged to the dead shard; those forwards
	// failed over. (All 9 could hash to live shards only by bad luck;
	// the ring test above guarantees real coverage at 1000 keys, so at 9
	// we only require the router survived. Reroute accounting is checked
	// by the fault-injection test below.)
	if rt.forwarded.Load() != 9 {
		t.Fatalf("forwarded = %d, want 9", rt.forwarded.Load())
	}
}

// TestRouterForwardFaultReroutes: an injected router.forward fault on
// the first attempt fails over to the next shard, invisibly to the
// client.
func TestRouterForwardFaultReroutes(t *testing.T) {
	armServeFaults(t, "seed=7;router.forward=error:@1")
	rt, ts, _, _ := newCluster(t, 2, RouterOptions{})
	var resp solveResponse
	body := solveRequest{moduleRequest: moduleRequest{Name: "t.c", C: solveSrc}}
	if code := postJSON(t, ts, "/v1/solve", body, &resp); code != http.StatusOK {
		t.Fatalf("faulted forward returned %d", code)
	}
	if resp.Degraded {
		t.Fatal("one faulted attempt must reroute, not degrade")
	}
	if rt.rerouted.Load() == 0 {
		t.Fatal("reroute not counted")
	}
}

// TestRouterDegradesLocallyWhenAllShardsDown: the answer of last resort
// is the local sound Ω solution — 200, degraded, everything external —
// never a drop or a 502.
func TestRouterDegradesLocallyWhenAllShardsDown(t *testing.T) {
	rt, ts, _, backends := newCluster(t, 2, RouterOptions{Breaker: fastBreaker()})
	for _, b := range backends {
		b.Close()
	}
	var resp solveResponse
	body := solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Queries:       []string{"p"},
	}
	if code := postJSON(t, ts, "/v1/solve", body, &resp); code != http.StatusOK {
		t.Fatalf("all-down solve returned %d, want 200 (degraded)", code)
	}
	if !resp.Degraded {
		t.Fatal("all-down answer not marked degraded")
	}
	if !resp.PointsTo["p"].External {
		t.Fatal("degraded answer must be the sound Ω: p points to external memory")
	}
	if rt.degradedLocal.Load() != 1 {
		t.Fatalf("degradedLocal = %d, want 1", rt.degradedLocal.Load())
	}

	// Alias queries degrade to MayAlias, the sound verdict.
	var ar aliasResponse
	if code := postJSON(t, ts, "/v1/alias", aliasRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Pairs:         [][2]string{{"p", "p"}},
	}, &ar); code != http.StatusOK {
		t.Fatalf("all-down alias returned %d", code)
	}
	if !ar.Degraded || len(ar.Answers) != 1 || ar.Answers[0].Result == "NoAlias" {
		t.Fatalf("all-down alias answer unsound or missing: %+v", ar)
	}

	// A garbage module is still the client's fault, even all-down.
	if code := postJSON(t, ts, "/v1/solve", solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: "not a module @@@"},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad module returned %d, want 400", code)
	}
}

func TestRouterRequestIDAndDrain(t *testing.T) {
	rt, ts, _, _ := newCluster(t, 2, RouterOptions{})
	body := mustJSON(t, solveRequest{moduleRequest: moduleRequest{Name: "t.c", C: solveSrc}})

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "router-test-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve returned %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "router-test-42" {
		t.Fatalf("X-Request-Id = %q, want the caller's ID echoed", got)
	}

	// Draining router sheds with 503 + Retry-After >= 1.
	rt.Shutdown()
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining router answered %d, want 503", resp.StatusCode)
	}
	assertRetryAfterFloor(t, resp)
}

func TestRouterHealthzAndMetrics(t *testing.T) {
	_, ts, _, backends := newCluster(t, 2, RouterOptions{Breaker: fastBreaker()})
	body := solveRequest{moduleRequest: moduleRequest{Name: "t.c", C: solveSrc}}
	if code := postJSON(t, ts, "/v1/solve", body, nil); code != http.StatusOK {
		t.Fatalf("solve returned %d", code)
	}

	var h routerHealthz
	getJSON(t, ts, "/healthz", &h)
	if h.Status != "ok" || h.Backends != 2 || h.Open != 0 {
		t.Fatalf("healthz: %+v", h)
	}

	// Kill a shard and trip its breaker with traffic: /healthz reports it.
	backends[0].Close()
	backends[1].Close()
	for i := 0; i < 8; i++ {
		src := fmt.Sprintf("static int y%d; int *q%d = &y%d;", i, i, i)
		postJSON(t, ts, "/v1/solve", solveRequest{moduleRequest: moduleRequest{Name: "t.c", C: src}}, nil)
	}
	getJSON(t, ts, "/healthz", &h)
	if h.Open == 0 {
		t.Fatalf("no open breakers reported after killing every shard: %+v", h)
	}
	// Open breakers must surface as "degraded" (regression: the router
	// used to answer "ok" with every breaker open).
	if h.Status != "degraded" {
		t.Fatalf("healthz status = %q with %d open breakers, want \"degraded\"", h.Status, h.Open)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"pip_router_forwarded_total",
		"pip_router_rerouted_total",
		"pip_router_degraded_local_total",
		"pip_router_backend_forwarded_total",
		"pip_router_backend_failures_total",
		"pip_router_backend_state",
		"pip_router_handle_pins",
		"pip_router_ring_generation",
		"pip_router_backends",
		"pip_router_backends_draining",
		"pip_router_membership_changes_total",
		"pip_router_probes_total",
		"pip_router_probe_failures_total",
		"pip_router_hedges_total",
		"pip_router_hedge_wins_total",
		"pip_router_hedge_denied_total",
		"pip_router_hedge_budget_tokens",
		"pip_trace_dropped_total",
		"pip_flightrec_dumps_total",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("router metrics missing %q in:\n%s", want, text)
		}
	}
	// The router's exposition must be structurally valid Prometheus text
	// format, like the server's.
	if err := obs.CheckExposition(string(text)); err != nil {
		t.Fatalf("router /metrics: invalid exposition: %v\n%s", err, text)
	}
}

// TestRouterRejectsEmptyBackends pins the constructor contract.
func TestRouterRejectsEmptyBackends(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRouter with no backends did not panic")
		}
	}()
	NewRouter(RouterOptions{})
}
