package serve

// Distributed tracing for the request path. Every analysis request runs
// under a trace ID (X-Trace-Id: caller-supplied so the router and its
// backends share one, or minted here) with its spans recorded on a
// per-trace obs.Trace held in a bounded index. GET /debug/trace?id=
// replays a trace as Chrome trace_event JSON; on the router that
// endpoint additionally fetches every backend's spans for the ID and
// merges them into one timeline (obs.MergeChrome). Completed requests
// also feed the flight recorder, so an anomaly dump carries the recent
// request history that led up to it.

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pip-analysis/pip/internal/obs"
)

// Trace-path bounds: how many distinct trace IDs a process retains for
// /debug/trace, and the record capacity of each per-trace ring. Requests
// sharing a trace ID share one ring (their lanes are distinguished by
// request ID), so the capacity covers a multi-request trace.
const (
	DefaultTraceIndexSize    = 256
	DefaultTraceRecords      = 1 << 12
	traceParentHeader        = "X-Trace-Parent"
	traceIDHeader            = "X-Trace-Id"
	requestIDHeader          = "X-Request-Id"
	flightTriggerDegraded    = "solve.degraded"
	flightTriggerBreaker     = "breaker.open"
	flightTriggerBreakerHalf = "breaker.half-open"
	flightTriggerMembership  = "membership.change"
	flightTriggerProbeFail   = "probe.fail"
)

// sanitizeHeaderID validates a caller-supplied identifier header the way
// withRequestID always has: printable ASCII, bounded length. Returns ""
// when the value must be replaced.
func sanitizeHeaderID(id string) string {
	if id == "" || len(id) > 128 || strings.ContainsFunc(id, func(c rune) bool {
		return c < 0x20 || c > 0x7e
	}) {
		return ""
	}
	return id
}

// traceIDKey carries the request's trace ID through its context.
type traceIDKey struct{}

// traceIDFrom returns the request's trace ID, or "" outside the middleware.
func traceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// withTraceID accepts a caller-supplied X-Trace-Id or mints one, echoes
// it, and stores it in the context. Shared by the server and the router;
// the router forwards the same ID to every backend attempt, which is
// what makes the cluster-wide merge possible.
func withTraceID(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeHeaderID(r.Header.Get(traceIDHeader))
		if id == "" {
			id = obs.NewID()
		}
		w.Header().Set(traceIDHeader, id)
		ctx := context.WithValue(r.Context(), traceIDKey{}, id)
		h(w, r.WithContext(ctx))
	}
}

// traceIndex is the bounded trace-ID → recorder map behind /debug/trace.
// Eviction is FIFO over distinct IDs: a debugging endpoint wants the
// recent past, and FIFO is exact enough for that at this size.
type traceIndex struct {
	capacity int
	records  int // ring capacity of each per-trace recorder

	mu      sync.Mutex
	m       map[string]*obs.Trace
	order   []string
	evicted uint64
}

func newTraceIndex(capacity, records int) *traceIndex {
	if capacity <= 0 {
		capacity = DefaultTraceIndexSize
	}
	if records <= 0 {
		records = DefaultTraceRecords
	}
	return &traceIndex{
		capacity: capacity,
		records:  records,
		m:        make(map[string]*obs.Trace, capacity),
	}
}

// obtain returns the recorder for a trace ID, creating (and indexing) it
// on first use. Requests that share a trace ID share a recorder, so a
// router fan-out or a client-grouped run of requests lands on one
// timeline.
func (ti *traceIndex) obtain(id, label string) *obs.Trace {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if tr, ok := ti.m[id]; ok {
		return tr
	}
	tr := obs.New(label, ti.records)
	tr.SetID(id)
	if len(ti.order) >= ti.capacity {
		oldest := ti.order[0]
		ti.order = ti.order[1:]
		delete(ti.m, oldest)
		ti.evicted++
	}
	ti.m[id] = tr
	ti.order = append(ti.order, id)
	return tr
}

// get returns the recorder for a trace ID, or nil.
func (ti *traceIndex) get(id string) *obs.Trace {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	return ti.m[id]
}

// stats returns resident trace count and evictions.
func (ti *traceIndex) stats() (resident int, evicted uint64) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	return len(ti.m), ti.evicted
}

// reqTrace is the per-request recording handle the middleware threads
// through the context: the trace it records onto and the request's lane.
type reqTrace struct {
	tr   *obs.Trace
	lane obs.Track
}

// reqTraceKey carries the reqTrace through the request context.
type reqTraceKey struct{}

// reqTraceFrom returns the request's recording handle, or nil.
func reqTraceFrom(ctx context.Context) *reqTrace {
	rt, _ := ctx.Value(reqTraceKey{}).(*reqTrace)
	return rt
}

// traced builds the per-request tracing + flight-recorder middleware
// shared by the server and the router. It must sit inside
// requestID/withTraceID (it reads both IDs) and outside admission and
// forwarding (their spans record on the lane it opens). label names the
// process in trace metadata ("pipserve", "pip-router").
func traced(traces *traceIndex, flight *obs.FlightRecorder, dropped *atomic.Uint64, label string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		traceID := traceIDFrom(ctx)
		reqID := requestIDFrom(ctx)
		tr := traces.obtain(traceID, label)
		lane := tr.NewTrack("req-" + reqID)
		rt := &reqTrace{tr: tr, lane: lane}
		spanArgs := []obs.KV{obs.S("request_id", reqID)}
		if parent := sanitizeHeaderID(r.Header.Get(traceParentHeader)); parent != "" {
			spanArgs = append(spanArgs, obs.S("parent", parent))
		}
		root := lane.Begin(r.URL.Path, spanArgs...)
		ow := &outcomeWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		droppedBefore := tr.Dropped()
		h(ow, r.WithContext(context.WithValue(ctx, reqTraceKey{}, rt)))
		root.End(obs.N("status", int64(ow.status)))

		// Per-trace rings drop (counted) when saturated; surface the new
		// drops on pip_trace_dropped_total so saturated tracing is
		// visible. The delta is approximate under concurrent requests on
		// one trace ID — the counter's job is "nonzero means look".
		if d := tr.Dropped() - droppedBefore; d > 0 {
			dropped.Add(d)
		}
		flight.Record(obs.ReqRecord{
			TraceID:    traceID,
			RequestID:  reqID,
			Path:       r.URL.Path,
			Status:     ow.status,
			Degraded:   ow.degraded,
			Start:      start.UnixNano(),
			DurationNS: time.Since(start).Nanoseconds(),
			Dropped:    tr.Dropped(),
			Spans:      laneSpans(tr, "req-"+reqID),
		})
		if ow.degraded {
			flight.Trigger(flightTriggerDegraded, r.URL.Path)
		}
	}
}

// traced is the Server's instance of the shared tracing middleware.
func (s *Server) traced(h http.HandlerFunc) http.HandlerFunc {
	return traced(s.traces, s.flight, &s.traceDropped, "pipserve", h)
}

// laneSpans filters a trace's exported records down to one lane — the
// request's own spans, for its flight-recorder record.
func laneSpans(tr *obs.Trace, lane string) []obs.Record {
	all := tr.Export()
	out := make([]obs.Record, 0, 8)
	for _, rec := range all {
		if rec.Track == lane {
			out = append(out, rec)
		}
	}
	return out
}

// handleTrace serves GET /debug/trace?id=<trace-id>: the process's spans
// for that trace as Chrome trace_event JSON. 404 for unknown IDs.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := sanitizeHeaderID(r.URL.Query().Get("id"))
	if id == "" {
		s.writeError(w, http.StatusBadRequest, "missing or invalid ?id= trace ID")
		return
	}
	tr := s.traces.get(id)
	if tr == nil {
		s.writeError(w, http.StatusNotFound, "unknown trace ID (evicted or never seen)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := tr.WriteChrome(w); err != nil {
		s.log.Error("write trace", "err", err)
	}
}

// flightrecResponse is the GET /debug/flightrec body.
type flightrecResponse struct {
	// Dumps are the retained anomaly dumps, oldest first.
	Dumps []obs.Dump `json:"dumps"`
	// DumpsTotal counts dumps over the process lifetime (retained or not).
	DumpsTotal uint64 `json:"dumps_total"`
	// Suppressed counts triggers swallowed by the per-reason cooldown.
	Suppressed uint64 `json:"suppressed"`
	// Recorded counts requests ever recorded into the ring.
	Recorded uint64 `json:"recorded"`
}

// handleFlightrec serves GET /debug/flightrec: the last N anomaly dumps.
func (s *Server) handleFlightrec(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, flightrecResponse{
		Dumps:      s.flight.Dumps(),
		DumpsTotal: s.flight.DumpCount(),
		Suppressed: s.flight.Suppressed(),
		Recorded:   s.flight.Recorded(),
	})
}
