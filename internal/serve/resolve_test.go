package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// resolveSrcEdit appends one function to solveSrc — a monotone edit from
// the constraint set's point of view.
const resolveSrcEdit = solveSrc + `
void g(int *q) { int *r = q; }
`

func TestResolveEndpoint(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First request: no handle, a session is created (generation 0).
	var r0 resolveResponse
	code := postJSON(t, ts, "/v1/resolve?config=IP%2BWL(FIFO)", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Queries:       []string{"p"},
	}, &r0)
	if code != http.StatusOK {
		t.Fatalf("resolve returned %d", code)
	}
	if r0.Handle == "" || r0.Generation != 0 || r0.Incremental == nil {
		t.Fatalf("bad first resolve: %+v", r0)
	}
	if !r0.PointsTo["p"].External {
		t.Fatal("@p escapes through take() but external not reported")
	}

	// Identical resubmission: empty delta, solution reused.
	var r1 resolveResponse
	code = postJSON(t, ts, "/v1/resolve", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Handle:        r0.Handle,
	}, &r1)
	if code != http.StatusOK {
		t.Fatalf("resubmit returned %d", code)
	}
	if r1.Generation != 1 || r1.Incremental == nil || !r1.Incremental.ReusedSolution {
		t.Fatalf("identical resubmission should reuse: %+v", r1.Incremental)
	}

	// Edited resubmission: re-solved (resume or fallback), still answers.
	var r2 resolveResponse
	code = postJSON(t, ts, "/v1/resolve", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: resolveSrcEdit},
		Handle:        r0.Handle,
		Queries:       []string{"p", "g.q"},
	}, &r2)
	if code != http.StatusOK {
		t.Fatalf("edited resubmit returned %d", code)
	}
	if r2.Generation != 2 || r2.Incremental.ReusedSolution {
		t.Fatalf("edit should re-solve: gen=%d %+v", r2.Generation, r2.Incremental)
	}
	if !r2.PointsTo["g.q"].External {
		t.Fatal("exported g's parameter should point externally")
	}

	// Unknown handle: 404, lineage not silently restarted.
	code = postJSON(t, ts, "/v1/resolve", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Handle:        "nope",
	}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown handle returned %d, want 404", code)
	}

	// Config change mid-lineage: 400.
	code = postJSON(t, ts, "/v1/resolve?config=EP%2BNAIVE", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Handle:        r0.Handle,
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("config change returned %d, want 400", code)
	}

	// The metrics endpoint reports the incremental outcome split.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`pip_incremental_requests_total{outcome="reused"} 1`,
		`pip_demand_requests_total`,
		`pip_incremental_reused_constraints`,
		`pip_sessions 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

func TestResolveSessionEviction(t *testing.T) {
	s := New(Options{MaxSessions: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	handles := make([]string, 3)
	for i := range handles {
		var r resolveResponse
		if code := postJSON(t, ts, "/v1/resolve", resolveRequest{
			moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		}, &r); code != http.StatusOK {
			t.Fatalf("resolve %d returned %d", i, code)
		}
		handles[i] = r.Handle
	}
	// The store held at most 2; the oldest handle was evicted.
	if code := postJSON(t, ts, "/v1/resolve", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Handle:        handles[0],
	}, nil); code != http.StatusNotFound {
		t.Fatalf("evicted handle returned %d, want 404", code)
	}
	if resident, evicted := s.sessions.stats(); resident != 2 || evicted != 1 {
		t.Fatalf("store stats resident=%d evicted=%d, want 2/1", resident, evicted)
	}
}

func TestDemandQueryParam(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var resp solveResponse
	code := postJSON(t, ts, "/v1/solve?ptr=p", solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Queries:       []string{"p"},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("demand solve returned %d", code)
	}
	if resp.Demand == nil {
		t.Fatal("demand solve should report exploration stats")
	}
	if resp.Demand.ExploredVars == 0 || resp.Demand.ExploredVars > resp.Demand.TotalVars {
		t.Fatalf("implausible demand stats: %+v", resp.Demand)
	}
	if !resp.PointsTo["p"].External {
		t.Fatal("demand answer for p should report external")
	}

	// Demand mode on alias queries: answers stay sound, stats reported.
	var ar aliasResponse
	code = postJSON(t, ts, "/v1/alias?ptr=p", aliasRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Pairs:         [][2]string{{"p", "p"}},
	}, &ar)
	if code != http.StatusOK {
		t.Fatalf("demand alias returned %d", code)
	}
	if ar.Demand == nil {
		t.Fatal("demand alias should report exploration stats")
	}
	if ar.Answers[0].Result == "" {
		t.Fatalf("alias answer missing: %+v", ar.Answers[0])
	}

	// Bad root name: client error.
	code = postJSON(t, ts, "/v1/solve?ptr=nosuch", solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad demand root returned %d, want 400", code)
	}

	// Exhaustive solves are unaffected and report no demand stats.
	var full solveResponse
	if code := postJSON(t, ts, "/v1/solve", solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Queries:       []string{"p"},
	}, &full); code != http.StatusOK || full.Demand != nil {
		t.Fatalf("exhaustive solve: code=%d demand=%+v", code, full.Demand)
	}
}
