package serve

import (
	"sync"
	"time"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/obs"
)

// session is one incremental analysis lineage held by the server: a
// pip.Session plus the configuration fixed at creation. The handle is the
// client's key for resubmitting edited versions of the same module.
type session struct {
	id   string
	cfg  pip.Config
	sess *pip.Session

	// mu serializes updates to one lineage: two concurrent resubmissions
	// of the same handle would otherwise race to become the next
	// generation (pip.Session serializes the solve, but the response must
	// pair the stats with the generation it created).
	mu       sync.Mutex
	lastUsed time.Time
	// refs counts in-flight resolves holding this session (guarded by the
	// store's mutex, not mu). The evictor skips sessions with refs > 0: an
	// evicted-while-busy session would have its checkpoint state freed
	// under the resolver and its response would pair stats with a lineage
	// that no longer exists.
	refs int
}

// sessionStore is a bounded LRU map of live sessions. A long-running
// server holds propagation state (checkpoints) per session — memory that
// must stay bounded under an unbounded stream of clients, exactly like
// the solution cache. Beyond the cap the least recently used idle lineage
// is dropped; its client's next resolve falls back to a fresh generation
// 0. Busy sessions (an in-flight resolve holds a reference) are never
// evicted, so the store can transiently exceed its cap by the number of
// concurrent resolves — bounded in turn by the server's admission cap.
type sessionStore struct {
	mu        sync.Mutex
	cap       int
	entries   map[string]*session
	evictions int64
}

func newSessionStore(cap int) *sessionStore {
	// Clamp: a non-positive cap would otherwise make the eviction loop in
	// create spin forever looking for a victim in an empty map. One
	// resident session is the smallest store that can still serve.
	if cap < 1 {
		cap = 1
	}
	return &sessionStore{cap: cap, entries: make(map[string]*session)}
}

// create registers a new lineage under a fresh handle, evicting the least
// recently used idle session when the store is full. The returned session
// is acquired (refs held); the caller must release it.
func (st *sessionStore) create(eng *pip.Engine, cfg pip.Config) *session {
	s := &session{
		id:       obs.NewID(),
		cfg:      cfg,
		sess:     eng.NewSession(cfg),
		lastUsed: time.Now(),
		refs:     1,
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for len(st.entries) >= st.cap {
		oldest := ""
		var oldestAt time.Time
		for id, e := range st.entries {
			if e.refs > 0 {
				continue // busy: an in-flight resolve owns it
			}
			if oldest == "" || e.lastUsed.Before(oldestAt) {
				oldest, oldestAt = id, e.lastUsed
			}
		}
		if oldest == "" {
			// Every resident session is busy; overflow transiently rather
			// than evict state out from under a live resolve.
			break
		}
		delete(st.entries, oldest)
		st.evictions++
	}
	st.entries[s.id] = s
	return s
}

// get returns the session for a handle, refreshing its LRU position and
// acquiring a reference; the caller must release it.
func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.entries[id]
	if ok {
		s.lastUsed = time.Now()
		s.refs++
	}
	return s, ok
}

// release drops a reference acquired by create or get, making the session
// evictable again once no resolve holds it.
func (st *sessionStore) release(s *session) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s.refs--
}

// stats reports resident sessions and lifetime evictions.
func (st *sessionStore) stats() (resident int, evictions int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries), st.evictions
}
