package serve

import (
	"sync"
	"time"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/obs"
)

// session is one incremental analysis lineage held by the server: a
// pip.Session plus the configuration fixed at creation. The handle is the
// client's key for resubmitting edited versions of the same module.
type session struct {
	id   string
	cfg  pip.Config
	sess *pip.Session

	// mu serializes updates to one lineage: two concurrent resubmissions
	// of the same handle would otherwise race to become the next
	// generation (pip.Session serializes the solve, but the response must
	// pair the stats with the generation it created).
	mu       sync.Mutex
	lastUsed time.Time
}

// sessionStore is a bounded LRU map of live sessions. A long-running
// server holds propagation state (checkpoints) per session — memory that
// must stay bounded under an unbounded stream of clients, exactly like
// the solution cache. Beyond the cap the least recently used lineage is
// dropped; its client's next resolve falls back to a fresh generation 0.
type sessionStore struct {
	mu        sync.Mutex
	cap       int
	entries   map[string]*session
	evictions int64
}

func newSessionStore(cap int) *sessionStore {
	return &sessionStore{cap: cap, entries: make(map[string]*session)}
}

// create registers a new lineage under a fresh handle, evicting the least
// recently used session when the store is full.
func (st *sessionStore) create(eng *pip.Engine, cfg pip.Config) *session {
	s := &session{
		id:       obs.NewID(),
		cfg:      cfg,
		sess:     eng.NewSession(cfg),
		lastUsed: time.Now(),
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for len(st.entries) >= st.cap {
		oldest := ""
		var oldestAt time.Time
		for id, e := range st.entries {
			if oldest == "" || e.lastUsed.Before(oldestAt) {
				oldest, oldestAt = id, e.lastUsed
			}
		}
		delete(st.entries, oldest)
		st.evictions++
	}
	st.entries[s.id] = s
	return s
}

// get returns the session for a handle, refreshing its LRU position.
func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.entries[id]
	if ok {
		s.lastUsed = time.Now()
	}
	return s, ok
}

// stats reports resident sessions and lifetime evictions.
func (st *sessionStore) stats() (resident int, evictions int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries), st.evictions
}
