package serve

// Hedged forwards bound the router's tail latency during membership
// churn: when the owning shard is slow (draining, overloaded, or dying
// but not yet tripped), waiting for it to time out before failing over
// costs the client the full forward timeout. Instead, after an adaptive
// delay derived from the observed forward latency, the router races the
// next candidate and takes whichever answers first.
//
// Unbounded hedging is a retry storm with better marketing, so hedges
// are governed by a token bucket: each hedge spends one token, and the
// bucket refills by a small fraction per successful forward. Under a
// churn storm the hedge rate is therefore capped at roughly
// Ratio × the success rate plus the Burst reserve — the cluster can
// never see its load doubled by its own router.

import (
	"sync"
	"sync/atomic"
	"time"
)

// HedgeOptions configures hedged forwards on the router's route path.
type HedgeOptions struct {
	// Disabled turns hedging off; failover then happens only after the
	// in-flight attempt fails.
	Disabled bool
	// DelayMin/DelayMax clamp the adaptive hedge delay (2× the EWMA of
	// observed successful forward latency). <= 0 means the defaults.
	DelayMin time.Duration
	DelayMax time.Duration
	// Burst is the token-bucket capacity — the hedge reserve available
	// instantly. <= 0 means DefaultHedgeBurst.
	Burst float64
	// Ratio is the fraction of a token refilled per successful forward;
	// it caps the steady-state hedge rate. <= 0 means DefaultHedgeRatio.
	Ratio float64
}

// Defaults for the zero HedgeOptions value.
const (
	DefaultHedgeDelayMin = 10 * time.Millisecond
	DefaultHedgeDelayMax = 2 * time.Second
	// DefaultHedgeDelay is used before any latency has been observed.
	DefaultHedgeDelay = 50 * time.Millisecond
	DefaultHedgeBurst = 8.0
	DefaultHedgeRatio = 0.1
)

func (o HedgeOptions) withDefaults() HedgeOptions {
	if o.DelayMin <= 0 {
		o.DelayMin = DefaultHedgeDelayMin
	}
	if o.DelayMax <= 0 {
		o.DelayMax = DefaultHedgeDelayMax
	}
	if o.DelayMax < o.DelayMin {
		o.DelayMax = o.DelayMin
	}
	if o.Burst <= 0 {
		o.Burst = DefaultHedgeBurst
	}
	if o.Ratio <= 0 {
		o.Ratio = DefaultHedgeRatio
	}
	return o
}

// hedgePolicy is the router-wide hedge state: the latency estimate the
// adaptive delay derives from, and the token bucket that bounds hedge
// volume. Both are hot-path cheap: the EWMA is one atomic, the bucket
// one short mutex.
type hedgePolicy struct {
	opts HedgeOptions

	// ewmaMicros is the exponentially weighted moving average (α = 1/5)
	// of successful forward latency, in microseconds. 0 = no observation.
	ewmaMicros atomic.Int64

	mu     sync.Mutex
	tokens float64
}

func newHedgePolicy(opts HedgeOptions) *hedgePolicy {
	opts = opts.withDefaults()
	return &hedgePolicy{opts: opts, tokens: opts.Burst}
}

// observe feeds one successful forward's latency into the EWMA and
// refills the token bucket by Ratio.
func (h *hedgePolicy) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	for {
		old := h.ewmaMicros.Load()
		next := us
		if old != 0 {
			next = old - old/5 + us/5
			if next < 1 {
				next = 1
			}
		}
		if h.ewmaMicros.CompareAndSwap(old, next) {
			break
		}
	}
	h.mu.Lock()
	h.tokens += h.opts.Ratio
	if h.tokens > h.opts.Burst {
		h.tokens = h.opts.Burst
	}
	h.mu.Unlock()
}

// delay returns the adaptive hedge delay: 2× the observed latency EWMA
// (a request slower than twice typical is worth racing), clamped to
// [DelayMin, DelayMax]; DefaultHedgeDelay before any observation.
func (h *hedgePolicy) delay() time.Duration {
	d := DefaultHedgeDelay
	if us := h.ewmaMicros.Load(); us > 0 {
		d = 2 * time.Duration(us) * time.Microsecond
	}
	if d < h.opts.DelayMin {
		d = h.opts.DelayMin
	}
	if d > h.opts.DelayMax {
		d = h.opts.DelayMax
	}
	return d
}

// take spends one hedge token; false means the budget is exhausted and
// the request must wait for its in-flight attempt like a non-hedged one.
func (h *hedgePolicy) take() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tokens >= 1 {
		h.tokens--
		return true
	}
	return false
}

// refund returns a token taken for a hedge that could not launch (every
// remaining candidate's breaker was open).
func (h *hedgePolicy) refund() {
	h.mu.Lock()
	if h.tokens < h.opts.Burst {
		h.tokens++
	}
	h.mu.Unlock()
}

// level reports the current token count for the /metrics gauge.
func (h *hedgePolicy) level() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tokens
}
