package serve

// Tests for dynamic cluster membership: ring-rebuild determinism, the
// arc-remap property of consistent hashing under join/leave, the
// drain/remove lineage protocol, the active health prober, hedged
// forwards and their retry budget, and the healthz "degraded" fix.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// plainRouter builds a router over fake backend URLs with no prober —
// for tests that exercise ring math without any traffic.
func plainRouter(t *testing.T, urls ...string) *Router {
	t.Helper()
	rt := NewRouter(RouterOptions{Backends: urls, Probe: ProbeOptions{Disabled: true}})
	t.Cleanup(rt.Close)
	return rt
}

// TestRouterHealthzDegradedWhenBreakersOpen is the regression test for
// the healthz bug: the router used to report "ok" even with every
// breaker open. Open breakers must read "degraded" — still HTTP 200,
// because every admitted request still gets a sound answer.
func TestRouterHealthzDegradedWhenBreakersOpen(t *testing.T) {
	rt, ts, _, _ := newCluster(t, 2, RouterOptions{Probe: ProbeOptions{Disabled: true}})

	var h routerHealthz
	getJSON(t, ts, "/healthz", &h)
	if h.Status != "ok" || h.Open != 0 {
		t.Fatalf("fresh router healthz: %+v", h)
	}

	for _, b := range rt.snap.Load().backends {
		b.breaker.forceOpen()
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz returned %d, want 200 (degraded is not down)", resp.StatusCode)
	}
	getJSON(t, ts, "/healthz", &h)
	if h.Status != "degraded" || h.Open != 2 {
		t.Fatalf("healthz with all breakers open: %+v, want degraded/2", h)
	}

	for _, b := range rt.snap.Load().backends {
		b.breaker.forceClose()
	}
	getJSON(t, ts, "/healthz", &h)
	if h.Status != "ok" || h.Open != 0 {
		t.Fatalf("healthz after recovery: %+v", h)
	}
}

// TestCandidatesZeroAlloc pins the candidate-selection fast path: with a
// caller-provided buffer it must not allocate (the old implementation
// built a map per request).
func TestCandidatesZeroAlloc(t *testing.T) {
	rt := plainRouter(t, "http://a", "http://b", "http://c")
	snap := rt.snap.Load()
	key := routeKey(&routeProbe{C: "int x; int *p = &x;"}, "")
	var n int
	allocs := testing.AllocsPerRun(200, func() {
		var cbuf [8]*routerBackend
		n = len(snap.candidates(key, cbuf[:0]))
	})
	if n != 3 {
		t.Fatalf("candidates returned %d backends, want 3", n)
	}
	if allocs != 0 {
		t.Fatalf("candidates allocates %v times per call, want 0", allocs)
	}
}

func BenchmarkRouterCandidates(b *testing.B) {
	rt := NewRouter(RouterOptions{
		Backends: []string{"http://a", "http://b", "http://c", "http://d", "http://e"},
		Probe:    ProbeOptions{Disabled: true},
	})
	defer rt.Close()
	snap := rt.snap.Load()
	key := routeKey(&routeProbe{C: "int x; int *p = &x;"}, "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var cbuf [8]*routerBackend
		if len(snap.candidates(key, cbuf[:0])) != 5 {
			b.Fatal("short candidate list")
		}
	}
}

// TestRingRebuildOrderIndependent: the same membership set must produce
// the identical ring whatever sequence of adds and removes led to it —
// this is what makes a reroute during churn land where a fresh route
// would.
func TestRingRebuildOrderIndependent(t *testing.T) {
	ref := plainRouter(t, "http://a:1", "http://b:1", "http://c:1")

	viaRemove := plainRouter(t, "http://d:1", "http://c:1", "http://a:1", "http://b:1")
	if err := viaRemove.RemoveBackend("http://d:1"); err != nil {
		t.Fatal(err)
	}
	viaAdd := plainRouter(t, "http://c:1")
	for _, u := range []string{"http://a:1", "http://b:1"} {
		if err := viaAdd.AddBackend(u); err != nil {
			t.Fatal(err)
		}
	}

	want := ref.snap.Load()
	for name, rt := range map[string]*Router{"remove-order": viaRemove, "add-order": viaAdd} {
		got := rt.snap.Load()
		var gotURLs, wantURLs []string
		for _, b := range got.backends {
			gotURLs = append(gotURLs, b.url)
		}
		for _, b := range want.backends {
			wantURLs = append(wantURLs, b.url)
		}
		if !reflect.DeepEqual(gotURLs, wantURLs) {
			t.Fatalf("%s: backend order %v, want %v", name, gotURLs, wantURLs)
		}
		if !reflect.DeepEqual(got.ring, want.ring) {
			t.Fatalf("%s: ring differs from reference despite identical membership", name)
		}
	}
}

// TestRingJoinLeaveRemapsOnlyOwnedArcs is the consistent-hashing
// property: removing a backend only remaps the keys it owned, and
// adding one only claims keys for itself — everything else stays put.
func TestRingJoinLeaveRemapsOnlyOwnedArcs(t *testing.T) {
	rt := plainRouter(t, "http://a:1", "http://b:1", "http://c:1", "http://d:1")
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = routeKey(&routeProbe{C: fmt.Sprintf("int k%d;", i)}, "")
	}
	owner := func(s *ringSnapshot, key uint64) string {
		c := s.candidates(key, nil)
		if len(c) == 0 {
			t.Fatal("empty ring")
		}
		return c[0].url
	}
	before := rt.snap.Load()

	if err := rt.RemoveBackend("http://d:1"); err != nil {
		t.Fatal(err)
	}
	afterLeave := rt.snap.Load()
	moved := 0
	for _, k := range keys {
		was, is := owner(before, k), owner(afterLeave, k)
		if was == "http://d:1" {
			moved++
			if is == "http://d:1" {
				t.Fatal("removed backend still owns keys")
			}
			continue
		}
		if is != was {
			t.Fatalf("key moved %s -> %s though the removed backend never owned it", was, is)
		}
	}
	if moved == 0 {
		t.Fatal("removed backend owned no keys out of 2000 — ring badly skewed")
	}

	if err := rt.AddBackend("http://e:1"); err != nil {
		t.Fatal(err)
	}
	afterJoin := rt.snap.Load()
	claimed := 0
	for _, k := range keys {
		was, is := owner(afterLeave, k), owner(afterJoin, k)
		if is == "http://e:1" {
			claimed++
			continue
		}
		if is != was {
			t.Fatalf("join remapped key %s -> %s instead of to the joiner", was, is)
		}
	}
	if claimed == 0 {
		t.Fatal("joined backend claimed no keys out of 2000")
	}
}

// TestAdminDrainAndRemoveLineageProtocol walks a resolve lineage through
// graceful removal: drain keeps the pinned lineage alive on its owner,
// remove purges the pin and the client gets the standard 404-restart.
func TestAdminDrainAndRemoveLineageProtocol(t *testing.T) {
	rt, ts, _, _ := newCluster(t, 3, RouterOptions{Probe: ProbeOptions{Disabled: true}})

	var r0 resolveResponse
	if code := postJSON(t, ts, "/v1/resolve", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
	}, &r0); code != http.StatusOK {
		t.Fatalf("create returned %d", code)
	}
	rt.mu.Lock()
	pinned := rt.handles[r0.Handle]
	rt.mu.Unlock()
	if pinned == nil {
		t.Fatal("lineage not pinned")
	}

	// Drain the owner: it leaves the ring but the lineage continues.
	var ring ringResponse
	if code := postJSON(t, ts, "/admin/backends",
		adminBackendsRequest{Op: "drain", Backend: pinned.url}, &ring); code != http.StatusOK {
		t.Fatalf("drain returned %d", code)
	}
	if ring.Generation < 2 {
		t.Fatalf("drain did not bump the ring generation: %+v", ring)
	}
	for _, b := range ring.Backends {
		if b.URL == pinned.url && (b.State != "draining" || b.Ownership != 0 || b.VNodes != 0) {
			t.Fatalf("drained backend still on the ring: %+v", b)
		}
	}
	var r1 resolveResponse
	if code := postJSON(t, ts, "/v1/resolve", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: resolveSrcEdit},
		Handle:        r0.Handle,
	}, &r1); code != http.StatusOK {
		t.Fatalf("resubmit to draining owner returned %d", code)
	}
	if r1.Handle != r0.Handle || r1.Generation != 1 {
		t.Fatalf("lineage broken by drain: %+v", r1)
	}

	// Remove the owner: the pin is purged and a resubmission hits a
	// backend with no such session — the 404-restart protocol.
	if code := postJSON(t, ts, "/admin/backends",
		adminBackendsRequest{Op: "remove", Backend: pinned.url}, &ring); code != http.StatusOK {
		t.Fatalf("remove returned %d", code)
	}
	if len(ring.Backends) != 2 {
		t.Fatalf("removed backend still resident: %+v", ring)
	}
	rt.mu.Lock()
	stillPinned := rt.handles[r0.Handle]
	rt.mu.Unlock()
	if stillPinned != nil {
		t.Fatal("pin to removed backend not purged")
	}
	if code := postJSON(t, ts, "/v1/resolve", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: resolveSrcEdit},
		Handle:        r0.Handle,
	}, nil); code != http.StatusNotFound {
		t.Fatalf("resubmit after remove returned %d, want 404 (restart protocol)", code)
	}
	var r2 resolveResponse
	if code := postJSON(t, ts, "/v1/resolve", resolveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: resolveSrcEdit},
	}, &r2); code != http.StatusOK {
		t.Fatalf("lineage restart returned %d", code)
	}
	if r2.Handle == "" || r2.Generation != 0 {
		t.Fatalf("restarted lineage: %+v", r2)
	}
}

// TestAdminBackendsErrors pins the admin surface's error contract.
func TestAdminBackendsErrors(t *testing.T) {
	_, ts, _, backends := newCluster(t, 2, RouterOptions{Probe: ProbeOptions{Disabled: true}})
	cases := []struct {
		req  adminBackendsRequest
		want int
	}{
		{adminBackendsRequest{Op: "add", Backend: backends[0].URL}, http.StatusConflict},
		{adminBackendsRequest{Op: "remove", Backend: "http://nobody:1"}, http.StatusNotFound},
		{adminBackendsRequest{Op: "drain", Backend: "http://nobody:1"}, http.StatusNotFound},
		{adminBackendsRequest{Op: "add", Backend: "not a url"}, http.StatusBadRequest},
		{adminBackendsRequest{Op: "explode", Backend: backends[0].URL}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code := postJSON(t, ts, "/admin/backends", c.req, nil); code != c.want {
			t.Fatalf("%+v returned %d, want %d", c.req, code, c.want)
		}
	}
}

// TestSetBackendsReconciles covers the SIGHUP-reload primitive: a diff
// against the desired set in one generation, survivors keeping their
// identity, and the empty-set refusal.
func TestSetBackendsReconciles(t *testing.T) {
	rt, _, _, backends := newCluster(t, 2, RouterOptions{Probe: ProbeOptions{Disabled: true}})
	keep := rt.snap.Load().backends[0]
	genBefore := rt.snap.Load().gen

	added, removed, err := rt.SetBackends([]string{keep.url, "http://new:1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || added[0] != "http://new:1" || len(removed) != 1 {
		t.Fatalf("diff: added=%v removed=%v", added, removed)
	}
	snap := rt.snap.Load()
	if snap.gen != genBefore+1 {
		t.Fatalf("reload took %d generations, want 1", snap.gen-genBefore)
	}
	found := false
	for _, b := range snap.backends {
		if b.url == keep.url {
			if b != keep {
				t.Fatal("surviving backend was recreated — breaker history lost")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("surviving backend missing")
	}

	// No-op reload: no generation bump.
	if _, _, err := rt.SetBackends([]string{keep.url, "http://new:1"}); err != nil {
		t.Fatal(err)
	}
	if g := rt.snap.Load().gen; g != snap.gen {
		t.Fatalf("no-op reload bumped generation %d -> %d", snap.gen, g)
	}

	// An empty set (truncated backends file) is refused.
	if _, _, err := rt.SetBackends(nil); err == nil {
		t.Fatal("empty backend set accepted")
	}
	_ = backends
}

// TestProberOpensAndClosesBreaker: with zero user traffic, the active
// prober discovers a sick backend (forcing its breaker open, with a
// probe.fail flight dump) and its recovery (closing the breaker again).
func TestProberOpensAndClosesBreaker(t *testing.T) {
	var healthy atomic.Bool
	bts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && healthy.Load() {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(bts.Close)
	rt := NewRouter(RouterOptions{
		Backends: []string{bts.URL},
		Probe: ProbeOptions{
			Interval:         10 * time.Millisecond,
			Timeout:          200 * time.Millisecond,
			FailThreshold:    2,
			SuccessThreshold: 1,
		},
	})
	t.Cleanup(rt.Close)
	b := rt.snap.Load().backends[0]

	waitState := func(want breakerState, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st, _ := b.breaker.snapshot(); st == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		st, _ := b.breaker.snapshot()
		t.Fatalf("%s: breaker stuck %v, want %v", what, st, want)
	}

	waitState(breakerOpen, "sick backend")
	foundDump := false
	for _, d := range rt.flight.Dumps() {
		if d.Reason == flightTriggerProbeFail {
			foundDump = true
		}
	}
	if !foundDump {
		t.Fatal("no probe.fail flight dump after the prober opened the breaker")
	}
	if rt.probeFailsTotal.Load() == 0 || b.probeFails.Load() == 0 {
		t.Fatal("probe failures not counted")
	}

	healthy.Store(true)
	waitState(breakerClosed, "recovered backend")
}

// slowCluster builds a 3-shard cluster where one backend delays every
// analysis answer, and returns a module source whose route key makes the
// slow backend the primary owner.
func slowCluster(t *testing.T, slowDelay time.Duration, ropts RouterOptions) (*Router, *httptest.Server, func(i int) string) {
	t.Helper()
	servers := make([]*Server, 3)
	urls := make([]string, 3)
	for i := range servers {
		servers[i] = New(Options{})
		h := servers[i].Handler()
		if i == 0 {
			sh := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/solve" {
					time.Sleep(slowDelay)
				}
				sh.ServeHTTP(w, r)
			})
		}
		bts := httptest.NewServer(h)
		t.Cleanup(bts.Close)
		urls[i] = bts.URL
	}
	ropts.Backends = urls
	ropts.Probe = ProbeOptions{Disabled: true}
	rt := NewRouter(ropts)
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	// Find sources owned by the slow backend so every request must
	// either wait for it or hedge past it.
	snap := rt.snap.Load()
	slowSrc := func(i int) string {
		for j := 0; ; j++ {
			src := fmt.Sprintf("static int s%d_%d; int *ps%d_%d = &s%d_%d;", i, j, i, j, i, j)
			c := snap.candidates(routeKey(&routeProbe{C: src}, ""), nil)
			if c[0].url == urls[0] {
				return src
			}
		}
	}
	return rt, ts, slowSrc
}

// TestRouterHedgedForwardWinsOverSlowShard: a primary slower than the
// hedge delay gets raced; the fast candidate's answer wins well before
// the slow shard would have answered, and nothing is dropped.
func TestRouterHedgedForwardWinsOverSlowShard(t *testing.T) {
	rt, ts, slowSrc := slowCluster(t, 400*time.Millisecond, RouterOptions{
		Hedge: HedgeOptions{DelayMin: 20 * time.Millisecond, DelayMax: 20 * time.Millisecond, Burst: 4},
	})
	start := time.Now()
	var resp solveResponse
	if code := postJSON(t, ts, "/v1/solve", solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: slowSrc(0)},
	}, &resp); code != http.StatusOK {
		t.Fatalf("hedged solve returned %d", code)
	}
	if resp.Degraded {
		t.Fatal("hedged solve degraded with two fast shards up")
	}
	if d := time.Since(start); d >= 300*time.Millisecond {
		t.Fatalf("hedge did not race the slow shard: answered in %v", d)
	}
	if rt.hedges.Load() == 0 || rt.hedgeWins.Load() == 0 {
		t.Fatalf("hedges=%d wins=%d, want both > 0", rt.hedges.Load(), rt.hedgeWins.Load())
	}
}

// TestRouterHedgeBudgetCap: the token bucket caps hedging — once Burst
// is spent (and with a negligible refill ratio), further slow requests
// wait for their primary instead of multiplying load.
func TestRouterHedgeBudgetCap(t *testing.T) {
	rt, ts, slowSrc := slowCluster(t, 120*time.Millisecond, RouterOptions{
		Hedge: HedgeOptions{
			DelayMin: 10 * time.Millisecond, DelayMax: 10 * time.Millisecond,
			Burst: 2, Ratio: 0.0001,
		},
	})
	for i := 0; i < 5; i++ {
		if code := postJSON(t, ts, "/v1/solve", solveRequest{
			moduleRequest: moduleRequest{Name: "t.c", C: slowSrc(i)},
		}, nil); code != http.StatusOK {
			t.Fatalf("request %d returned %d", i, code)
		}
	}
	if got := rt.hedges.Load(); got != 2 {
		t.Fatalf("hedges = %d, want exactly Burst = 2", got)
	}
	if got := rt.hedgeDenied.Load(); got != 3 {
		t.Fatalf("hedgeDenied = %d, want 3", got)
	}
}

// TestRemoveLastBackendDegrades: runtime removal down to zero is
// allowed, and the router keeps its sound-answer contract via the local
// Ω fallback until a backend joins again.
func TestRemoveLastBackendDegrades(t *testing.T) {
	rt, ts, _, backends := newCluster(t, 1, RouterOptions{Probe: ProbeOptions{Disabled: true}})
	if err := rt.RemoveBackend(backends[0].URL); err != nil {
		t.Fatal(err)
	}
	var resp solveResponse
	if code := postJSON(t, ts, "/v1/solve", solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Queries:       []string{"p"},
	}, &resp); code != http.StatusOK {
		t.Fatalf("zero-backend solve returned %d, want 200 (degraded)", code)
	}
	if !resp.Degraded || !resp.PointsTo["p"].External {
		t.Fatalf("zero-backend answer not the sound Ω: %+v", resp)
	}

	if err := rt.AddBackend(backends[0].URL); err != nil {
		t.Fatal(err)
	}
	resp = solveResponse{}
	if code := postJSON(t, ts, "/v1/solve", solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
	}, &resp); code != http.StatusOK {
		t.Fatalf("rejoined solve returned %d", code)
	}
	if resp.Degraded {
		t.Fatal("still degraded after the backend rejoined")
	}
}
