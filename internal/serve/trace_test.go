package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/pip-analysis/pip/internal/obs"
)

// postTraced posts a solve with an explicit trace ID and returns the
// echoed X-Trace-Id header and status.
func postTraced(t *testing.T, ts *httptest.Server, traceID string, body any) (string, int) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/solve", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.Header.Get("X-Trace-Id"), resp.StatusCode
}

// TestServerTraceEndpoint: a request's trace is queryable back out as
// valid Chrome trace_event JSON carrying the server's request spans.
func TestServerTraceEndpoint(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	echoed, code := postTraced(t, ts, "trace-abc", solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
	})
	if code != http.StatusOK {
		t.Fatalf("solve returned %d", code)
	}
	if echoed != "trace-abc" {
		t.Fatalf("X-Trace-Id echoed as %q, want trace-abc", echoed)
	}

	resp, err := http.Get(ts.URL + "/debug/trace?id=trace-abc")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace returned %d: %s", resp.StatusCode, data)
	}
	if err := obs.CheckChrome(data); err != nil {
		t.Fatalf("trace fails validation: %v\n%s", err, data)
	}
	for _, want := range []string{"/v1/solve", "queue-wait", "solve"} {
		if !bytes.Contains(data, []byte(`"`+want+`"`)) {
			t.Fatalf("trace missing %q span:\n%s", want, data)
		}
	}

	// Unknown and malformed IDs answer 404/400, not 500.
	if code := getJSON(t, ts, "/debug/trace?id=nonexistent", nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace ID returned %d, want 404", code)
	}
	if code := getJSON(t, ts, "/debug/trace", nil); code != http.StatusBadRequest {
		t.Fatalf("missing trace ID returned %d, want 400", code)
	}
}

// TestServerMintsTraceID: with no caller-supplied X-Trace-Id, the server
// mints one and the response header is queryable.
func TestServerMintsTraceID(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	minted, code := postTraced(t, ts, "", solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
	})
	if code != http.StatusOK {
		t.Fatalf("solve returned %d", code)
	}
	if minted == "" {
		t.Fatal("no X-Trace-Id minted")
	}
	if code := getJSON(t, ts, "/debug/trace?id="+minted, nil); code != http.StatusOK {
		t.Fatalf("minted trace ID not queryable: %d", code)
	}
}

// TestClusterTraceRoundTrip is the tentpole acceptance path at the
// package level: one request through a router+backend cluster under one
// trace ID; the router's /debug/trace answers a single validated Chrome
// trace with both processes' spans merged under that ID.
func TestClusterTraceRoundTrip(t *testing.T) {
	_, ts, _, _ := newCluster(t, 2, RouterOptions{})

	const traceID = "cluster-trace-1"
	echoed, code := postTraced(t, ts, traceID, solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
	})
	if code != http.StatusOK {
		t.Fatalf("solve through router returned %d", code)
	}
	if echoed != traceID {
		t.Fatalf("router echoed X-Trace-Id %q, want %q", echoed, traceID)
	}

	resp, err := http.Get(ts.URL + "/debug/trace?id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router /debug/trace returned %d: %s", resp.StatusCode, data)
	}
	if err := obs.CheckChrome(data); err != nil {
		t.Fatalf("merged cluster trace fails validation: %v\n%s", err, data)
	}

	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if got, _ := doc.Metadata["trace_id"].(string); got != traceID {
		t.Fatalf("merged trace_id = %q, want %q", got, traceID)
	}
	procs := map[string]int{}
	spansByPID := map[int][]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" && ev.Name == "process_name" {
			name, _ := ev.Args["name"].(string)
			procs[name] = ev.PID
		}
		if ev.Phase == "X" {
			spansByPID[ev.PID] = append(spansByPID[ev.PID], ev.Name)
		}
	}
	routerPID, ok := procs["router"]
	if !ok {
		t.Fatalf("merged trace has no router process (procs %v)", procs)
	}
	backendPID := 0
	for name, pid := range procs {
		if strings.HasPrefix(name, "backend-") {
			backendPID = pid
		}
	}
	if backendPID == 0 {
		t.Fatalf("merged trace has no backend process (procs %v)", procs)
	}
	// Router side: the forward span. Backend side: the solve span.
	if !contains(spansByPID[routerPID], "forward") {
		t.Fatalf("router process carries no forward span: %v", spansByPID[routerPID])
	}
	if !contains(spansByPID[backendPID], "solve") {
		t.Fatalf("backend process carries no solve span: %v", spansByPID[backendPID])
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestTraceIndexEviction pins the FIFO bound: the index never holds more
// than its capacity of distinct trace IDs, and evicted IDs answer nil.
func TestTraceIndexEviction(t *testing.T) {
	ti := newTraceIndex(3, 16)
	for i := 0; i < 5; i++ {
		ti.obtain(fmt.Sprintf("t%d", i), "test")
	}
	resident, evicted := ti.stats()
	if resident != 3 || evicted != 2 {
		t.Fatalf("stats = (%d resident, %d evicted), want (3, 2)", resident, evicted)
	}
	if ti.get("t0") != nil || ti.get("t1") != nil {
		t.Fatal("evicted trace IDs still resolve")
	}
	if ti.get("t4") == nil {
		t.Fatal("recent trace ID evicted")
	}
	// obtain is idempotent per ID: re-asking returns the same recorder.
	a := ti.obtain("t4", "test")
	b := ti.obtain("t4", "test")
	if a != b {
		t.Fatal("obtain returned distinct recorders for one trace ID")
	}
}

// TestMarkDegradedWalksWriterChain: both the breaker's and the tracing
// middleware's outcome writers must see a degradation, with the logging
// statusWriter sandwiched between them.
func TestMarkDegradedWalksWriterChain(t *testing.T) {
	rec := httptest.NewRecorder()
	outer := &outcomeWriter{ResponseWriter: rec, status: http.StatusOK}
	mid := &statusWriter{ResponseWriter: outer, status: http.StatusOK}
	inner := &outcomeWriter{ResponseWriter: mid, status: http.StatusOK}
	markDegraded(inner)
	if !inner.degraded || !outer.degraded {
		t.Fatalf("markDegraded reached inner=%v outer=%v, want both true", inner.degraded, outer.degraded)
	}
	// Plain writers stay a no-op.
	markDegraded(rec)
}

// TestDegradedSolveTriggersFlightDump: an Ω-degraded response fires the
// solve.degraded trigger, and the dump's ring carries the request that
// degraded, identified by its trace ID.
func TestDegradedSolveTriggersFlightDump(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A one-firing budget degrades any real module soundly.
	b, _ := json.Marshal(solveRequest{moduleRequest: moduleRequest{
		Name: "t.c", C: solveSrc, Budget: "1f",
	}})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/solve", bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", "degraded-trace")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !out.Degraded {
		t.Skip("1-firing budget did not degrade this module; nothing to assert")
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		var fr flightrecResponse
		getJSON(t, ts, "/debug/flightrec", &fr)
		found := false
		for _, d := range fr.Dumps {
			if d.Reason != flightTriggerDegraded {
				continue
			}
			for _, r := range d.Records {
				if r.TraceID == "degraded-trace" && r.Degraded {
					found = true
				}
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no solve.degraded dump naming the degraded request")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
