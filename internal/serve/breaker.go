package serve

import (
	"sync"
	"time"
)

// The circuit breaker protects a struggling server from a retry storm: when
// the recent failure/degradation rate says solves are mostly not producing
// exact answers anymore, it is better to shed load fast (503 + Retry-After,
// costing the caller one round trip) than to queue more work behind the
// distress. The breaker watches outcomes over a sliding window of recent
// requests and moves through the classic three states:
//
//	closed    → everything flows; outcomes fill the window. When the bad
//	            fraction of a sufficiently full window crosses Threshold,
//	            the breaker trips.
//	open      → analysis requests are refused immediately with 503 and a
//	            Retry-After of the cooldown remainder. After Cooldown the
//	            next request transitions the breaker to half-open.
//	half-open → up to Probes requests are let through as canaries. One bad
//	            probe re-trips the breaker; Probes good ones close it and
//	            clear the window.
//
// "Bad" means a 5xx response or an Ω-degraded solve: degradations are
// sound, but a window full of them means budgets are being exhausted —
// the overload signal the breaker exists to react to.
type BreakerOptions struct {
	// Disabled turns the breaker off entirely (every request flows).
	Disabled bool
	// Window is the number of recent outcomes considered; <= 0 means 64.
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// breaker may trip — a cold server must not open on its first failure.
	// <= 0 means 20.
	MinSamples int
	// Threshold is the bad-outcome fraction that trips the breaker;
	// <= 0 means 0.5. Kept deliberately high: a server answering mostly
	// exact results with a tail of degradations is healthy.
	Threshold float64
	// Cooldown is how long the breaker stays open before probing;
	// <= 0 means 1s.
	Cooldown time.Duration
	// Probes is how many half-open canary requests must succeed to close
	// the breaker; <= 0 means 3.
	Probes int
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 20
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.Probes <= 0 {
		o.Probes = 3
	}
	return o
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is the sliding-window circuit breaker. All state is guarded by
// mu; the admission path takes it once per request, which is noise next
// to a solve.
type breaker struct {
	opts BreakerOptions
	// now is replaceable so tests can step through cooldowns without
	// sleeping.
	now func() time.Time
	// notify, when set (before traffic — it is written once at wiring
	// time), observes state transitions for the flight recorder. It is
	// always invoked after mu is released: the hook's dump path scrapes
	// metrics, which read breaker snapshots under the same mutex.
	notify func(from, to breakerState)

	mu       sync.Mutex
	state    breakerState
	ring     []bool // true = bad outcome
	next     int    // ring write position
	filled   int    // occupied ring slots
	bad      int    // bad outcomes currently in the ring
	openedAt time.Time
	probes   int // half-open probe admissions remaining
	probeOK  int // half-open probe successes so far
	trips    int64
}

func newBreaker(opts BreakerOptions) *breaker {
	opts = opts.withDefaults()
	return &breaker{
		opts: opts,
		now:  time.Now,
		ring: make([]bool, opts.Window),
	}
}

// allow reports whether a request may proceed; when it may not, retryAfter
// is the suggested client backoff. An open breaker past its cooldown
// flips to half-open here and admits the caller as a probe.
func (b *breaker) allow() (ok bool, retryAfter time.Duration) {
	if b.opts.Disabled {
		return true, 0
	}
	b.mu.Lock()
	var trans func()
	defer func() {
		b.mu.Unlock()
		if trans != nil {
			trans()
		}
	}()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if wait := b.opts.Cooldown - b.now().Sub(b.openedAt); wait > 0 {
			return false, wait
		}
		b.state = breakerHalfOpen
		b.probes = b.opts.Probes
		b.probeOK = 0
		trans = b.transition(breakerOpen, breakerHalfOpen)
		fallthrough
	default: // breakerHalfOpen
		if b.probes <= 0 {
			// Probe verdicts are still pending; shed until they land.
			return false, b.opts.Cooldown
		}
		b.probes--
		return true, 0
	}
}

// transition captures a notify callback for a state change. Called under
// mu; the returned thunk must be invoked after mu is released.
func (b *breaker) transition(from, to breakerState) func() {
	if b.notify == nil {
		return nil
	}
	return func() { b.notify(from, to) }
}

// record feeds one finished request's outcome back. Requests admitted
// while closed may report after the breaker has tripped; those stragglers
// are dropped in the open state and folded into the probe accounting in
// half-open (a bad one re-trips — conservative and safe).
func (b *breaker) record(bad bool) {
	if b.opts.Disabled {
		return
	}
	b.mu.Lock()
	var trans func()
	defer func() {
		b.mu.Unlock()
		if trans != nil {
			trans()
		}
	}()
	switch b.state {
	case breakerOpen:
		return
	case breakerHalfOpen:
		if bad {
			b.trip()
			trans = b.transition(breakerHalfOpen, breakerOpen)
			return
		}
		b.probeOK++
		if b.probeOK >= b.opts.Probes {
			b.reset()
			trans = b.transition(breakerHalfOpen, breakerClosed)
		}
	default: // breakerClosed
		if b.ring[b.next] {
			b.bad--
		}
		b.ring[b.next] = bad
		if bad {
			b.bad++
		}
		b.next = (b.next + 1) % len(b.ring)
		if b.filled < len(b.ring) {
			b.filled++
		}
		if b.filled >= b.opts.MinSamples &&
			float64(b.bad)/float64(b.filled) >= b.opts.Threshold {
			b.trip()
			trans = b.transition(breakerClosed, breakerOpen)
		}
	}
}

// forceOpen trips the breaker regardless of the window's contents — the
// health prober's consecutive-failure verdict is outside evidence that
// the backend is down, and waiting for user traffic to fail would admit
// requests into a known-dead shard. No-op when already open or disabled.
func (b *breaker) forceOpen() {
	if b.opts.Disabled {
		return
	}
	b.mu.Lock()
	var trans func()
	defer func() {
		b.mu.Unlock()
		if trans != nil {
			trans()
		}
	}()
	if b.state == breakerOpen {
		return
	}
	from := b.state
	b.trip()
	trans = b.transition(from, breakerOpen)
}

// forceClose resets the breaker to closed with a clean window — the
// prober saw the backend answer /healthz enough consecutive times that
// recovery need not wait for a user request to probe through half-open.
// No-op when already closed or disabled.
func (b *breaker) forceClose() {
	if b.opts.Disabled {
		return
	}
	b.mu.Lock()
	var trans func()
	defer func() {
		b.mu.Unlock()
		if trans != nil {
			trans()
		}
	}()
	if b.state == breakerClosed {
		return
	}
	from := b.state
	b.reset()
	trans = b.transition(from, breakerClosed)
}

// trip opens the breaker. Called under mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.trips++
}

// reset returns to closed with a clean window. Called under mu.
func (b *breaker) reset() {
	b.state = breakerClosed
	for i := range b.ring {
		b.ring[i] = false
	}
	b.next, b.filled, b.bad = 0, 0, 0
}

// snapshot returns the state and trip count for /metrics.
func (b *breaker) snapshot() (breakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
