package serve

// The shard router is the horizontal-scaling front door: it owns no
// engine of its own for normal traffic, but places every module on one
// of N pipserve backends by consistent hash of the module's content and
// configuration. Identical modules therefore always land on the same
// backend, whose solution cache (and persistent store, PR 8) already
// holds the answer — the cluster's caches shard instead of duplicating.
//
// Membership is dynamic (PR 10). The ring lives in an immutable
// snapshot swapped atomically on every change (RCU-style): a request
// in flight keeps the candidate list it started with, new requests see
// the new generation, and nothing is ever locked on the route path.
// Backends join, drain, and leave at runtime three ways — the admin
// surface (POST /admin/backends), a SIGHUP-reloaded backends file on
// cmd/pipserve, and the active health prober, which polls /healthz per
// backend and opens/closes the existing breakers on consecutive-failure
// and -success thresholds instead of waiting for a user request to fail.
//
// The router inherits the paper's degradation discipline end to end:
//
//   - a per-backend circuit breaker stops hammering a dead shard, fed
//     by both user traffic and the prober;
//   - a failed or shed forward (transport error, 5xx, 429, injected
//     router.forward fault) reroutes to the next distinct backend on the
//     ring, in ring order, so a killed shard's keyspace redistributes
//     deterministically;
//   - a forward slower than the adaptive hedge delay races the next
//     candidate and takes the first success, bounding churn latency;
//     hedges spend a token-bucket retry budget so churn can never turn
//     into a retry storm;
//   - a draining backend stops owning new route keys but keeps serving
//     its pinned /v1/resolve lineages until it is removed;
//   - when every backend is down the router answers locally with the
//     trivially sound Ω-degraded solution (pip.AnalyzeDegraded) rather
//     than dropping the request — a sound over-approximation beats an
//     error, exactly as inside the solver.
//
// Incremental lineages (/v1/resolve handles) are pinned: a handle's
// session state lives on the backend that created it, so the router
// remembers handle→backend and routes resubmissions there regardless of
// the module hash. A removed or lost backend loses its lineages —
// clients get 404 (or a local Ω answer if everything is down) and
// restart the lineage, which is the same contract a single pipserve
// gives after an eviction.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// Backends are the pipserve base URLs to shard across at startup,
	// e.g. "http://127.0.0.1:7071". At least one is required; the set
	// can change at runtime via AddBackend/DrainBackend/RemoveBackend,
	// SetBackends, or POST /admin/backends.
	Backends []string
	// Replicas is the number of virtual nodes per backend on the hash
	// ring; <= 0 means DefaultRouterReplicas. More replicas smooth the
	// keyspace split at the cost of a larger ring.
	Replicas int
	// Breaker configures the per-backend circuit breaker (zero value:
	// conservative defaults, like the Server's).
	Breaker BreakerOptions
	// Probe configures the active health prober (zero value: enabled
	// with conservative defaults; set Disabled to turn it off).
	Probe ProbeOptions
	// Hedge configures hedged forwards (zero value: enabled with
	// conservative defaults; set Disabled to turn them off).
	Hedge HedgeOptions
	// Client performs the forwards; nil means a client with
	// DefaultForwardTimeout.
	Client *http.Client
	// MaxBodyBytes bounds request bodies; <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// LogWriter receives structured request logs; nil disables logging.
	LogWriter io.Writer

	// FlightRecords bounds the flight recorder's ring of recent completed
	// request records; <= 0 means obs.DefaultFlightRecords.
	FlightRecords int
	// FlightDumps bounds retained anomaly dumps (served at
	// GET /debug/flightrec); <= 0 means obs.DefaultFlightDumps.
	FlightDumps int
	// FlightDir, when non-empty, writes each anomaly dump to a
	// timestamped JSON file under it.
	FlightDir string
	// OnFlightDump, when non-nil, runs after each anomaly dump.
	OnFlightDump func(reason string)
}

// Defaults for the zero RouterOptions value.
const (
	DefaultRouterReplicas = 64
	DefaultForwardTimeout = 2 * time.Minute
)

// routerBackend is one shard: its base URL, its breaker, its membership
// state, and counters. The object survives ring rebuilds — a backend
// that changes state keeps its breaker history and counters.
type routerBackend struct {
	url       string
	breaker   *breaker
	draining  atomic.Bool  // true: keeps pinned lineages, owns no new keys
	forwarded atomic.Int64 // successful forwards
	failures  atomic.Int64 // failed attempts (transport, 5xx, 429, fault)

	probes     atomic.Int64 // health probes sent
	probeFails atomic.Int64 // health probes failed
	// Consecutive-streak counters, owned by the prober goroutine.
	consecFail int
	consecOK   int
}

func (b *routerBackend) state() string {
	if b.draining.Load() {
		return "draining"
	}
	return "active"
}

// ringPoint is one virtual node: hash position → backend index into the
// owning snapshot's backends slice.
type ringPoint struct {
	hash uint64
	idx  int
}

// ringSnapshot is one immutable generation of cluster membership. The
// route path loads it once per request and never sees it change
// (RCU-style): membership mutations build a whole new snapshot and swap
// the pointer, so an in-flight request keeps the candidate list it
// started with while new requests see the new ring.
type ringSnapshot struct {
	gen      uint64
	backends []*routerBackend // resident set, sorted by URL (incl. draining)
	ring     []ringPoint      // vnodes of active backends only, sorted by hash
	live     int              // distinct active backends on the ring
}

// Router is the sharding reverse proxy. Create with NewRouter, expose
// via Handler, stop background work with Close.
type Router struct {
	opts      RouterOptions
	probeOpts ProbeOptions
	log       *slog.Logger
	mux       *http.ServeMux
	client    *http.Client
	hedge     *hedgePolicy

	// snap is the current membership generation; memberMu serializes
	// mutations (never taken on the route path).
	snap     atomic.Pointer[ringSnapshot]
	memberMu sync.Mutex

	// handles pins resolve lineages to the backend holding their session
	// state. Bounded by dropping arbitrary entries past routerMaxHandles:
	// a dropped pin only costs the client a 404 + lineage restart. Pins
	// to a removed backend are purged with it.
	mu      sync.Mutex
	handles map[string]*routerBackend

	draining  atomic.Bool
	probeStop chan struct{}
	closeOnce sync.Once

	forwarded     atomic.Int64 // requests answered by a backend
	rerouted      atomic.Int64 // failed attempts that moved to the next backend
	degradedLocal atomic.Int64 // requests answered by the local Ω fallback
	badRequests   atomic.Int64

	hedges      atomic.Int64 // hedge attempts launched
	hedgeWins   atomic.Int64 // requests answered by a hedge attempt
	hedgeDenied atomic.Int64 // hedges refused by an empty token bucket

	probesTotal     atomic.Int64
	probeFailsTotal atomic.Int64

	addsTotal    atomic.Int64
	drainsTotal  atomic.Int64
	removesTotal atomic.Int64
	reloadsTotal atomic.Int64

	// traces indexes the router's own per-trace-ID recorders; GET
	// /debug/trace merges them with the backends' spans for the same ID.
	// flight is the router's anomaly flight recorder (per-backend breaker
	// transitions, probe failures, membership changes, and local Ω
	// degradations).
	traces       *traceIndex
	flight       *obs.FlightRecorder
	traceDropped atomic.Uint64
}

// routerMaxHandles bounds the handle→backend pin table.
const routerMaxHandles = 4096

// Membership-operation errors, distinguished so the admin surface can
// answer 409 vs 404.
var (
	errBackendExists  = errors.New("backend already present")
	errBackendUnknown = errors.New("backend not present")
)

// NewRouter builds the shard router. It panics when no backends are
// given — a router born with nothing behind it is a configuration
// error, not a runtime condition to degrade around (runtime removal
// down to zero is allowed and degrades soundly).
func NewRouter(opts RouterOptions) *Router {
	if len(opts.Backends) == 0 {
		panic("serve.NewRouter: no backends")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = DefaultRouterReplicas
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	rt := &Router{
		opts:      opts,
		probeOpts: opts.Probe.withDefaults(),
		mux:       http.NewServeMux(),
		client:    opts.Client,
		hedge:     newHedgePolicy(opts.Hedge),
		handles:   make(map[string]*routerBackend),
		probeStop: make(chan struct{}),
		traces:    newTraceIndex(DefaultTraceIndexSize, DefaultTraceRecords),
	}
	if rt.client == nil {
		rt.client = &http.Client{Timeout: DefaultForwardTimeout}
	}
	if opts.LogWriter != nil {
		rt.log = slog.New(slog.NewJSONHandler(opts.LogWriter, nil))
	} else {
		rt.log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	// The flight recorder's dump embeds the router's own metrics scrape;
	// writeProm reads breaker snapshots, so every trigger site (breaker
	// notify below, prober, membership ops) fires after the owning mutex
	// is released.
	rt.flight = obs.NewFlightRecorder(obs.FlightRecorderOptions{
		Records: opts.FlightRecords,
		Dumps:   opts.FlightDumps,
		Dir:     opts.FlightDir,
		Metrics: func() string {
			var b strings.Builder
			rt.writeProm(&b)
			return b.String()
		},
		OnDump: func(d *obs.Dump) {
			rt.log.Info("flight recorder dump", "reason", d.Reason, "detail", d.Detail, "file", d.File)
			if opts.OnFlightDump != nil {
				opts.OnFlightDump(d.Reason)
			}
		},
	})
	backends := make([]*routerBackend, 0, len(opts.Backends))
	for _, u := range opts.Backends {
		nu, err := normalizeBackendURL(u)
		if err != nil {
			panic("serve.NewRouter: " + err.Error())
		}
		backends = append(backends, rt.newBackend(nu))
	}
	rt.snap.Store(buildSnapshot(1, backends, opts.Replicas))

	analysis := func(h http.HandlerFunc) http.HandlerFunc {
		return withRequestID(withTraceID(traced(rt.traces, rt.flight, &rt.traceDropped, "pip-router", h)))
	}
	rt.mux.HandleFunc("POST /v1/solve", analysis(rt.route))
	rt.mux.HandleFunc("POST /v1/alias", analysis(rt.route))
	rt.mux.HandleFunc("POST /v1/resolve", analysis(rt.route))
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("POST /admin/backends", rt.handleAdminBackends)
	rt.mux.HandleFunc("GET /debug/ring", rt.handleRing)
	rt.mux.HandleFunc("GET /debug/trace", rt.handleTrace)
	rt.mux.HandleFunc("GET /debug/flightrec", rt.handleFlightrec)
	if !rt.probeOpts.Disabled {
		go rt.proberLoop()
	}
	return rt
}

// newBackend wires one shard's breaker into the flight recorder.
func (rt *Router) newBackend(u string) *routerBackend {
	b := &routerBackend{url: u, breaker: newBreaker(rt.opts.Breaker)}
	b.breaker.notify = func(from, to breakerState) {
		switch to {
		case breakerOpen:
			rt.flight.Trigger(flightTriggerBreaker, "backend "+u+" "+from.String()+"->open")
		case breakerHalfOpen:
			rt.flight.Trigger(flightTriggerBreakerHalf, "backend "+u+" open->half-open")
		}
	}
	return b
}

// normalizeBackendURL validates a backend base URL and strips trailing
// slashes (paths are appended verbatim on forward).
func normalizeBackendURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("backend %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("backend %q: need http(s)://host[:port]", raw)
	}
	return raw, nil
}

// buildSnapshot constructs one immutable membership generation: the
// resident set sorted by URL (so the same membership always yields the
// same backend order and therefore the same ring, whatever sequence of
// adds and removes produced it) and the hash ring over active backends.
func buildSnapshot(gen uint64, backends []*routerBackend, replicas int) *ringSnapshot {
	sort.Slice(backends, func(a, b int) bool { return backends[a].url < backends[b].url })
	s := &ringSnapshot{gen: gen, backends: backends}
	for i, b := range backends {
		if b.draining.Load() {
			continue
		}
		s.live++
		for v := 0; v < replicas; v++ {
			h := fnv.New64a()
			io.WriteString(h, b.url)
			h.Write([]byte{'#', byte(v), byte(v >> 8)})
			s.ring = append(s.ring, ringPoint{hash: h.Sum64(), idx: i})
		}
	}
	sort.Slice(s.ring, func(a, b int) bool {
		if s.ring[a].hash != s.ring[b].hash {
			return s.ring[a].hash < s.ring[b].hash
		}
		return s.ring[a].idx < s.ring[b].idx
	})
	return s
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Shutdown stops admitting new requests. Forwards already in flight run
// to completion on their own goroutines (the HTTP server's), so callers
// drain by closing the listener as usual.
func (rt *Router) Shutdown() { rt.draining.Store(true) }

// Close stops the health prober (idempotent). It does not drain; call
// Shutdown for that.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.probeStop) })
}

// --- membership ---

// publishLocked installs a new membership generation. Called with
// memberMu held; returns the new snapshot for logging/triggers (which
// must fire after the caller releases memberMu — the flight dump path
// scrapes metrics).
func (rt *Router) publishLocked(backends []*routerBackend) *ringSnapshot {
	next := buildSnapshot(rt.snap.Load().gen+1, backends, rt.opts.Replicas)
	rt.snap.Store(next)
	return next
}

// membershipChanged fires the shared logging + flight-recorder trigger
// for a published membership change. Never called under memberMu/mu.
func (rt *Router) membershipChanged(op, detail string, gen uint64) {
	rt.log.Info("membership change", "op", op, "detail", detail, "ring_generation", gen)
	rt.flight.Trigger(flightTriggerMembership, fmt.Sprintf("%s %s (gen %d)", op, detail, gen))
}

// AddBackend joins a backend to the ring. New route keys start landing
// on it with the next snapshot; in-flight requests are untouched.
func (rt *Router) AddBackend(raw string) error {
	nu, err := normalizeBackendURL(raw)
	if err != nil {
		return err
	}
	rt.memberMu.Lock()
	cur := rt.snap.Load()
	for _, b := range cur.backends {
		if b.url == nu {
			rt.memberMu.Unlock()
			return fmt.Errorf("%s: %w", nu, errBackendExists)
		}
	}
	backends := append(append(make([]*routerBackend, 0, len(cur.backends)+1), cur.backends...), rt.newBackend(nu))
	next := rt.publishLocked(backends)
	rt.memberMu.Unlock()
	rt.addsTotal.Add(1)
	rt.membershipChanged("add", nu, next.gen)
	return nil
}

// DrainBackend marks a backend draining: it leaves the hash ring (no
// new route keys) but stays resident, so pinned /v1/resolve lineages
// keep landing on it until it is removed. Idempotent.
func (rt *Router) DrainBackend(raw string) error {
	nu, err := normalizeBackendURL(raw)
	if err != nil {
		return err
	}
	rt.memberMu.Lock()
	cur := rt.snap.Load()
	var target *routerBackend
	for _, b := range cur.backends {
		if b.url == nu {
			target = b
			break
		}
	}
	if target == nil {
		rt.memberMu.Unlock()
		return fmt.Errorf("%s: %w", nu, errBackendUnknown)
	}
	if target.draining.Load() {
		rt.memberMu.Unlock()
		return nil
	}
	target.draining.Store(true)
	next := rt.publishLocked(append(make([]*routerBackend, 0, len(cur.backends)), cur.backends...))
	rt.memberMu.Unlock()
	rt.drainsTotal.Add(1)
	rt.membershipChanged("drain", nu, next.gen)
	return nil
}

// RemoveBackend takes a backend out of the cluster entirely. Its pinned
// lineages are purged — clients holding their handles get the standard
// 404-restart protocol from whichever backend now owns the key.
// Removing the last backend is allowed: the router then answers every
// request with the local sound Ω degradation until a backend joins.
func (rt *Router) RemoveBackend(raw string) error {
	nu, err := normalizeBackendURL(raw)
	if err != nil {
		return err
	}
	rt.memberMu.Lock()
	cur := rt.snap.Load()
	var removed *routerBackend
	backends := make([]*routerBackend, 0, len(cur.backends))
	for _, b := range cur.backends {
		if b.url == nu {
			removed = b
			continue
		}
		backends = append(backends, b)
	}
	if removed == nil {
		rt.memberMu.Unlock()
		return fmt.Errorf("%s: %w", nu, errBackendUnknown)
	}
	next := rt.publishLocked(backends)
	rt.memberMu.Unlock()
	rt.purgePins(removed)
	rt.removesTotal.Add(1)
	rt.membershipChanged("remove", nu, next.gen)
	return nil
}

// SetBackends reconciles membership against a desired URL set (the
// -backends-file SIGHUP reload): URLs not yet resident join, resident
// backends missing from the set are removed (pins purged), and
// survivors keep their breaker history, counters, and drain state. The
// whole diff lands as one ring generation. An empty set is refused —
// a truncated backends file must not empty the cluster.
func (rt *Router) SetBackends(urls []string) (added, removed []string, err error) {
	desired := make([]string, 0, len(urls))
	seen := make(map[string]bool, len(urls))
	for _, raw := range urls {
		nu, err := normalizeBackendURL(raw)
		if err != nil {
			return nil, nil, err
		}
		if !seen[nu] {
			seen[nu] = true
			desired = append(desired, nu)
		}
	}
	if len(desired) == 0 {
		return nil, nil, errors.New("refusing to apply an empty backend set")
	}
	rt.memberMu.Lock()
	cur := rt.snap.Load()
	resident := make(map[string]*routerBackend, len(cur.backends))
	for _, b := range cur.backends {
		resident[b.url] = b
	}
	backends := make([]*routerBackend, 0, len(desired))
	for _, nu := range desired {
		if b, ok := resident[nu]; ok {
			backends = append(backends, b)
			delete(resident, nu)
			continue
		}
		backends = append(backends, rt.newBackend(nu))
		added = append(added, nu)
	}
	var purge []*routerBackend
	for nu, b := range resident {
		removed = append(removed, nu)
		purge = append(purge, b)
	}
	sort.Strings(removed)
	if len(added) == 0 && len(removed) == 0 {
		rt.memberMu.Unlock()
		return nil, nil, nil
	}
	next := rt.publishLocked(backends)
	rt.memberMu.Unlock()
	for _, b := range purge {
		rt.purgePins(b)
	}
	rt.reloadsTotal.Add(1)
	rt.membershipChanged("reload", fmt.Sprintf("+%d -%d (%d resident)", len(added), len(removed), len(next.backends)), next.gen)
	return added, removed, nil
}

// purgePins drops every lineage pin pointing at a removed backend.
func (rt *Router) purgePins(b *routerBackend) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for h, pinned := range rt.handles {
		if pinned == b {
			delete(rt.handles, h)
		}
	}
}

// --- routing ---

// routeProbe is the subset of an analysis request the router needs: the
// module content and configuration feed the hash, the handle pins
// lineages. Unknown fields (queries, pairs, ...) pass through untouched.
type routeProbe struct {
	Name   string `json:"name"`
	MIR    string `json:"mir"`
	C      string `json:"c"`
	Config string `json:"config"`
	Budget string `json:"budget"`
	Handle string `json:"handle"`
}

// routeKey hashes what determines the answer — module content and
// configuration — so equal modules always map to the same shard and hit
// its cache. The request name is deliberately excluded: renaming a file
// must not move (and re-solve) its module.
func routeKey(p *routeProbe, query string) uint64 {
	h := fnv.New64a()
	for _, s := range []string{p.MIR, "\x00", p.C, "\x00", p.Config, "\x00", query} {
		io.WriteString(h, s)
	}
	return h.Sum64()
}

// candidates appends every active backend in ring order starting at the
// key's position to out — the first entry is the owner, the rest the
// failover/hedge order. Deterministic: the same key on the same
// snapshot always yields the same sequence. Allocation-free when out
// has capacity: dedup uses a stack bitmask (a linear scan of out for
// the >64-backend tail), not a per-request map.
func (s *ringSnapshot) candidates(key uint64, out []*routerBackend) []*routerBackend {
	if len(s.ring) == 0 {
		return out
	}
	start := sort.Search(len(s.ring), func(i int) bool { return s.ring[i].hash >= key })
	var seen uint64
	n := 0
	for i := 0; i < len(s.ring) && n < s.live; i++ {
		p := s.ring[(start+i)%len(s.ring)]
		if p.idx < 64 {
			bit := uint64(1) << p.idx
			if seen&bit != 0 {
				continue
			}
			seen |= bit
		} else {
			dup := false
			for _, b := range out {
				if b == s.backends[p.idx] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		out = append(out, s.backends[p.idx])
		n++
	}
	return out
}

// route is the forwarding pipeline shared by all three analysis
// endpoints: probe the body, load the current ring snapshot, pick the
// candidate order, forward with failover and hedging, fall back to the
// local Ω answer when every shard is down.
func (rt *Router) route(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
		writeRouterError(w, http.StatusServiceUnavailable, "router is shutting down")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		rt.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, "body: "+err.Error())
		return
	}
	var probe routeProbe
	if err := json.Unmarshal(body, &probe); err != nil {
		rt.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}

	// Candidate order: the handle's pinned backend first for lineages
	// (even one draining — that is what draining means), then (or
	// otherwise) consistent-hash ring order over the loaded snapshot.
	snap := rt.snap.Load()
	var cbuf [8]*routerBackend
	cands := snap.candidates(routeKey(&probe, r.URL.Query().Get("config")), cbuf[:0])
	if probe.Handle != "" {
		rt.mu.Lock()
		pin := rt.handles[probe.Handle]
		rt.mu.Unlock()
		if pin != nil {
			reordered := append(make([]*routerBackend, 0, len(cands)+1), pin)
			for _, c := range cands {
				if c != pin {
					reordered = append(reordered, c)
				}
			}
			cands = reordered
		}
	}

	// Hedging is off for /v1/resolve: racing two backends would create
	// two lineages and pin only one, leaking session state on the loser.
	if rt.forwardRace(w, r, cands, body, r.URL.Path != "/v1/resolve") {
		return
	}

	// Every shard is unreachable, shedding, or failing: answer locally
	// with the sound Ω degradation rather than dropping the request.
	rt.degradeLocally(w, r, body, &probe)
}

// fwdOutcome is one attempt's result, produced on the attempt's own
// goroutine with its per-backend accounting already applied.
type fwdOutcome struct {
	b           *routerBackend
	status      int
	contentType string
	body        []byte
	err         error
	failed      bool // transport error, 5xx, or 429 (and not canceled)
	canceled    bool // the race was decided before this attempt finished
	hedge       bool
}

// forwardRace drives one request across the candidate list: one attempt
// at a time, failing over on error/5xx/429, plus — when the in-flight
// attempt is slower than the adaptive hedge delay and the retry budget
// allows — a hedge racing the next candidate. First success wins and is
// written to the client; false means every candidate was exhausted.
func (rt *Router) forwardRace(w http.ResponseWriter, r *http.Request, cands []*routerBackend, body []byte, allowHedge bool) bool {
	if len(cands) == 0 {
		return false
	}
	id := requestIDFrom(r.Context())
	traceID := traceIDFrom(r.Context())
	tc := reqTraceFrom(r.Context())
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel() // losers are aborted once a winner is written
	results := make(chan fwdOutcome, len(cands))
	next, inflight, attempts := 0, 0, 0

	launch := func(hedge bool) bool {
		for next < len(cands) {
			b := cands[next]
			next++
			if ok, _ := b.breaker.allow(); !ok {
				if tc != nil {
					tc.lane.Event("breaker-skip", obs.S("backend", b.url))
				}
				continue // open breaker: this shard is known-dead, skip it
			}
			attempt := attempts
			attempts++
			var span obs.Span
			if tc != nil {
				args := []obs.KV{obs.S("backend", b.url), obs.N("attempt", int64(attempt))}
				if hedge {
					args = append(args, obs.S("hedge", "true"))
				}
				span = tc.lane.Begin("forward", args...)
			}
			inflight++
			go func(b *routerBackend, span obs.Span) {
				out := rt.attemptOne(ctx, r, b, body, id, traceID, attempt, hedge)
				switch {
				case out.canceled:
					span.End(obs.S("outcome", "canceled"))
				case out.err != nil:
					span.End(obs.S("error", out.err.Error()))
				case out.failed:
					span.End(obs.N("status", int64(out.status)), obs.S("outcome", "failover"))
				default:
					span.End(obs.N("status", int64(out.status)))
				}
				results <- out
			}(b, span)
			return true
		}
		return false
	}

	if !launch(false) {
		return false
	}
	var timer *time.Timer
	var timerC <-chan time.Time
	if allowHedge && !rt.hedge.opts.Disabled && len(cands) > 1 {
		timer = time.NewTimer(rt.hedge.delay())
		defer timer.Stop()
		timerC = timer.C
	}
	for inflight > 0 {
		select {
		case out := <-results:
			inflight--
			if out.canceled {
				continue
			}
			if !out.failed {
				rt.forwarded.Add(1)
				if out.hedge {
					rt.hedgeWins.Add(1)
				}
				if r.URL.Path == "/v1/resolve" && out.status == http.StatusOK {
					rt.pinHandle(out.body, out.b)
				}
				if out.contentType != "" {
					w.Header().Set("Content-Type", out.contentType)
				}
				w.WriteHeader(out.status)
				w.Write(out.body)
				return true
			}
			rt.log.Info("forward failed", "backend", out.b.url, "err", out.err,
				"status", out.status, "request_id", id)
			// A failure moves on: either a replacement launches or a
			// hedge already covers the key.
			if launch(false) || inflight > 0 {
				rt.rerouted.Add(1)
			}
		case <-timerC:
			if !rt.hedge.take() {
				rt.hedgeDenied.Add(1)
				timerC = nil // budget empty: no more hedging this request
				continue
			}
			if !launch(true) {
				rt.hedge.refund()
				timerC = nil
				continue
			}
			rt.hedges.Add(1)
			if tc != nil {
				tc.lane.Event("hedge")
			}
			timer.Reset(rt.hedge.delay())
		}
	}
	return false
}

// attemptOne performs one backend attempt end to end — forward, read,
// classify — and applies the per-backend accounting on its own
// goroutine, win or lose, so a failing backend masked by hedge wins
// still trips its breaker. A canceled attempt (the race was decided)
// blames nobody.
func (rt *Router) attemptOne(ctx context.Context, r *http.Request, b *routerBackend, body []byte, id, traceID string, attempt int, hedge bool) fwdOutcome {
	out := fwdOutcome{b: b, hedge: hedge}
	start := time.Now()
	resp, err := rt.forward(ctx, r, b, body, id, traceID, attempt)
	if err != nil {
		out.err = err
	} else {
		respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes))
		resp.Body.Close()
		if rerr != nil {
			out.err = rerr
		} else {
			out.status = resp.StatusCode
			out.contentType = resp.Header.Get("Content-Type")
			out.body = respBody
		}
	}
	if out.err != nil && ctx.Err() != nil {
		out.canceled = true
		return out
	}
	if out.err != nil || out.status >= 500 || out.status == http.StatusTooManyRequests {
		// A shed (429/503) or failed (5xx) backend answer is this
		// shard's problem, not the client's: record and fail over.
		out.failed = true
		b.failures.Add(1)
		b.breaker.record(true)
		return out
	}
	b.breaker.record(false)
	b.forwarded.Add(1)
	rt.hedge.observe(time.Since(start))
	return out
}

// forward performs one backend attempt, preserving the method, path,
// query string, body, content type, request ID, and trace context: the
// backend joins the router's trace ID (so the cluster-wide merge finds
// its spans under the same key) with a span-parent naming this forward
// attempt. The injected router.forward fault fails the attempt before
// any bytes move, exactly like a refused connection.
func (rt *Router) forward(ctx context.Context, r *http.Request, b *routerBackend, body []byte, id, traceID string, attempt int) (*http.Response, error) {
	if err := faults.Inject(faults.RouterForward); err != nil {
		return nil, err
	}
	u := b.url + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(requestIDHeader, id)
	if traceID != "" {
		req.Header.Set(traceIDHeader, traceID)
		req.Header.Set(traceParentHeader, "router:"+id+":fwd"+strconv.Itoa(attempt))
	}
	return rt.client.Do(req)
}

// pinHandle records which backend owns a lineage, from a successful
// resolve response.
func (rt *Router) pinHandle(respBody []byte, b *routerBackend) {
	var rr struct {
		Handle string `json:"handle"`
	}
	if json.Unmarshal(respBody, &rr) != nil || rr.Handle == "" {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.handles) >= routerMaxHandles {
		for h := range rt.handles { // drop an arbitrary pin; cost: one 404
			delete(rt.handles, h)
			break
		}
	}
	rt.handles[rr.Handle] = b
}

// degradeLocally answers the request with pip.AnalyzeDegraded: every
// pointer points to external memory, everything escapes. Sound for any
// program the backends would have analyzed, and infinitely better than
// a drop — the client can distinguish it by the degraded flag and retry
// for an exact answer later.
func (rt *Router) degradeLocally(w http.ResponseWriter, r *http.Request, body []byte, probe *routeProbe) {
	mreq := moduleRequest{Name: probe.Name, MIR: probe.MIR, C: probe.C}
	m, err := parseModule(&mreq)
	if err != nil {
		rt.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfgName := r.URL.Query().Get("config")
	if cfgName == "" {
		cfgName = probe.Config
	}
	cfg := pip.DefaultConfig()
	if cfgName != "" {
		c, err := pip.ParseConfig(cfgName)
		if err != nil {
			rt.badRequests.Add(1)
			writeRouterError(w, http.StatusBadRequest, "config: "+err.Error())
			return
		}
		cfg = c
	}
	res := pip.AnalyzeDegraded(m)
	rt.degradedLocal.Add(1)
	// Mark the degradation on the tracing middleware's outcome writer so
	// the flight recorder sees it, and leave an event on the trace lane.
	markDegraded(w)
	if tc := reqTraceFrom(r.Context()); tc != nil {
		tc.lane.Event("degraded-local")
	}
	rt.log.Info("all backends down, served local degraded answer",
		"path", r.URL.Path, "request_id", requestIDFrom(r.Context()))

	switch r.URL.Path {
	case "/v1/alias":
		var req aliasRequest
		if err := json.Unmarshal(body, &req); err != nil || len(req.Pairs) == 0 {
			writeRouterError(w, http.StatusBadRequest, `"pairs" missing or empty`)
			return
		}
		resp := aliasResponse{Name: probe.Name, Config: cfg.String(), Degraded: true,
			Answers: make([]aliasAnswer, 0, len(req.Pairs))}
		for _, pair := range req.Pairs {
			ans := aliasAnswer{A: pair[0], B: pair[1]}
			verdict, err := res.Alias(pair[0], pair[1], req.Size)
			if err != nil {
				ans.Error = err.Error()
			} else {
				ans.Result = verdict.String()
			}
			resp.Answers = append(resp.Answers, ans)
		}
		writeRouterJSON(w, http.StatusOK, resp)
	case "/v1/resolve":
		// No backend means no session state; answer soundly without a
		// handle so the client restarts the lineage when shards return.
		var req resolveRequest
		_ = json.Unmarshal(body, &req)
		resp := resolveResponse{Name: probe.Name, Config: cfg.String(), Degraded: true,
			Escaped: res.ExternallyAccessible()}
		fillPointsTo(&resp.PointsTo, &resp.Dump, res, req.Queries)
		writeRouterJSON(w, http.StatusOK, resp)
	default: // /v1/solve
		var req solveRequest
		_ = json.Unmarshal(body, &req)
		resp := solveResponse{Name: probe.Name, Config: cfg.String(), Degraded: true,
			Escaped: res.ExternallyAccessible()}
		fillPointsTo(&resp.PointsTo, &resp.Dump, res, req.Queries)
		writeRouterJSON(w, http.StatusOK, resp)
	}
}

// fillPointsTo renders query answers (or the full dump) from a Result —
// the shared tail of the solve/resolve response shapes.
func fillPointsTo(pointsTo *map[string]pointsToEntry, dump *string, res *pip.Result, queries []string) {
	if len(queries) == 0 {
		*dump = res.Dump()
		return
	}
	*pointsTo = make(map[string]pointsToEntry, len(queries))
	for _, name := range queries {
		targets, external, err := res.PointsTo(name)
		if err != nil {
			(*pointsTo)[name] = pointsToEntry{Error: err.Error()}
			continue
		}
		if targets == nil {
			targets = []string{}
		}
		(*pointsTo)[name] = pointsToEntry{Targets: targets, External: external}
	}
}

// --- admin & introspection ---

// adminBackendsRequest is the POST /admin/backends body.
type adminBackendsRequest struct {
	// Op is "add", "drain", or "remove".
	Op string `json:"op"`
	// Backend is the shard base URL the op applies to.
	Backend string `json:"backend"`
}

// handleAdminBackends mutates cluster membership at runtime. Answers
// the post-change ring dump on success; 400 for malformed requests,
// 404 for ops on absent backends, 409 for adding a resident one.
func (rt *Router) handleAdminBackends(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 1<<16))
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, "body: "+err.Error())
		return
	}
	var req adminBackendsRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeRouterError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	switch req.Op {
	case "add":
		err = rt.AddBackend(req.Backend)
	case "drain":
		err = rt.DrainBackend(req.Backend)
	case "remove":
		err = rt.RemoveBackend(req.Backend)
	default:
		writeRouterError(w, http.StatusBadRequest, `"op" must be "add", "drain", or "remove"`)
		return
	}
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, errBackendExists):
			status = http.StatusConflict
		case errors.Is(err, errBackendUnknown):
			status = http.StatusNotFound
		}
		writeRouterError(w, status, err.Error())
		return
	}
	writeRouterJSON(w, http.StatusOK, rt.ringDump())
}

// ringBackendInfo is one backend's row in the GET /debug/ring dump.
type ringBackendInfo struct {
	URL     string `json:"url"`
	State   string `json:"state"`   // "active" | "draining"
	Breaker string `json:"breaker"` // "closed" | "open" | "half-open"
	VNodes  int    `json:"vnodes"`
	// Ownership is this backend's fraction of the keyspace (summed vnode
	// arc lengths); 0 for draining backends.
	Ownership     float64 `json:"ownership"`
	Forwarded     int64   `json:"forwarded"`
	Failures      int64   `json:"failures"`
	ProbeFailures int64   `json:"probe_failures"`
}

// ringResponse is the GET /debug/ring body: the current membership
// generation and each backend's ownership of the keyspace.
type ringResponse struct {
	Generation uint64            `json:"generation"`
	RingPoints int               `json:"ring_points"`
	Backends   []ringBackendInfo `json:"backends"`
}

func (rt *Router) handleRing(w http.ResponseWriter, r *http.Request) {
	writeRouterJSON(w, http.StatusOK, rt.ringDump())
}

// ringDump renders the current snapshot's ownership: per-backend vnode
// counts and keyspace fractions computed from the vnode arc lengths
// (point i owns the arc from its predecessor, wrapping at the top).
func (rt *Router) ringDump() ringResponse {
	snap := rt.snap.Load()
	own := make([]float64, len(snap.backends))
	vnodes := make([]int, len(snap.backends))
	if n := len(snap.ring); n == 1 {
		own[snap.ring[0].idx] = 1
		vnodes[snap.ring[0].idx] = 1
	} else if n > 1 {
		const keyspace = float64(1<<63) * 2 // 2^64
		for i, p := range snap.ring {
			prev := snap.ring[(i+n-1)%n].hash
			arc := p.hash - prev // uint64 wrap-around is the wrap arc
			own[p.idx] += float64(arc) / keyspace
			vnodes[p.idx]++
		}
	}
	resp := ringResponse{Generation: snap.gen, RingPoints: len(snap.ring)}
	for i, b := range snap.backends {
		st, _ := b.breaker.snapshot()
		resp.Backends = append(resp.Backends, ringBackendInfo{
			URL:           b.url,
			State:         b.state(),
			Breaker:       st.String(),
			VNodes:        vnodes[i],
			Ownership:     own[i],
			Forwarded:     b.forwarded.Load(),
			Failures:      b.failures.Load(),
			ProbeFailures: b.probeFails.Load(),
		})
	}
	return resp
}

// routerHealthz is the router's /healthz body.
type routerHealthz struct {
	// Status is "ok", "degraded" (some backend breakers open — still
	// HTTP 200, the router still answers soundly), or "draining" (503).
	Status   string `json:"status"`
	Backends int    `json:"backends"`
	// Open counts backends with an open breaker (known-dead shards).
	Open int `json:"open"`
	// Draining counts backends serving only pinned lineages.
	Draining   int    `json:"draining"`
	Generation uint64 `json:"generation"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := rt.snap.Load()
	resp := routerHealthz{Status: "ok", Backends: len(snap.backends), Generation: snap.gen}
	for _, b := range snap.backends {
		if st, _ := b.breaker.snapshot(); st == breakerOpen {
			resp.Open++
		}
		if b.draining.Load() {
			resp.Draining++
		}
	}
	status := http.StatusOK
	if resp.Open > 0 {
		// Still 200 — every admitted request gets a sound answer — but
		// external load balancers can tell a fully healthy router from
		// one surviving on reroutes or Ω.
		resp.Status = "degraded"
	}
	if rt.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeRouterJSON(w, status, resp)
}

// handleTrace serves GET /debug/trace?id= on the router: the router's
// own spans for that trace ID merged with every backend's spans for the
// same ID (fetched live over their /debug/trace endpoints) into one
// Chrome trace_event timeline — the cluster-wide view of the request.
// Backends that never saw the trace (404) or are unreachable contribute
// nothing; 404 only when no process has spans for the ID.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := sanitizeHeaderID(r.URL.Query().Get("id"))
	if id == "" {
		writeRouterError(w, http.StatusBadRequest, "missing or invalid ?id= trace ID")
		return
	}
	var parts []obs.TracePart
	if tr := rt.traces.get(id); tr != nil {
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err == nil {
			parts = append(parts, obs.TracePart{Process: "router", Data: buf.Bytes()})
		}
	}
	for i, b := range rt.snap.Load().backends {
		data, err := rt.fetchBackendTrace(r, b, id)
		if err != nil {
			rt.log.Info("backend trace fetch failed", "backend", b.url, "err", err)
			continue
		}
		if data != nil {
			parts = append(parts, obs.TracePart{Process: fmt.Sprintf("backend-%d", i), Data: data})
		}
	}
	if len(parts) == 0 {
		writeRouterError(w, http.StatusNotFound, "unknown trace ID (evicted or never seen)")
		return
	}
	merged, err := obs.MergeChrome(parts)
	if err != nil {
		writeRouterError(w, http.StatusInternalServerError, "merge: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(merged)
}

// fetchBackendTrace asks one backend for its spans under a trace ID.
// A 404 answer (the backend never saw the trace) returns (nil, nil).
func (rt *Router) fetchBackendTrace(r *http.Request, b *routerBackend, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		b.url+"/debug/trace?id="+url.QueryEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	return io.ReadAll(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes))
}

// handleFlightrec serves GET /debug/flightrec: the router's retained
// anomaly dumps (breaker transitions, probe failures, membership
// changes, local Ω degradations).
func (rt *Router) handleFlightrec(w http.ResponseWriter, r *http.Request) {
	writeRouterJSON(w, http.StatusOK, flightrecResponse{
		Dumps:      rt.flight.Dumps(),
		DumpsTotal: rt.flight.DumpCount(),
		Suppressed: rt.flight.Suppressed(),
		Recorded:   rt.flight.Recorded(),
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.writeProm(w)
}

// writeProm renders the router's Prometheus exposition; split out so the
// flight recorder can embed the same scrape in anomaly dumps.
func (rt *Router) writeProm(w io.Writer) {
	snap := rt.snap.Load()
	p := obs.NewPromWriter(w)
	p.Counter("pip_router_forwarded_total", "Requests answered by a backend shard.", float64(rt.forwarded.Load()))
	p.Counter("pip_router_rerouted_total", "Failed-over forward attempts (dead, shedding, or faulted shards).", float64(rt.rerouted.Load()))
	p.Counter("pip_router_degraded_local_total", "Requests answered by the local sound Ω fallback with every shard down.", float64(rt.degradedLocal.Load()))
	p.Counter("pip_router_bad_requests_total", "Requests refused with a 4xx by the router itself.", float64(rt.badRequests.Load()))
	fw := make(map[string]float64, len(snap.backends))
	fl := make(map[string]float64, len(snap.backends))
	open := make(map[string]float64, len(snap.backends))
	pf := make(map[string]float64, len(snap.backends))
	draining := 0
	for _, b := range snap.backends {
		fw[b.url] = float64(b.forwarded.Load())
		fl[b.url] = float64(b.failures.Load())
		st, _ := b.breaker.snapshot()
		open[b.url] = float64(st)
		pf[b.url] = float64(b.probeFails.Load())
		if b.draining.Load() {
			draining++
		}
	}
	p.CounterVec("pip_router_backend_forwarded_total", "Successful forwards per backend.", "backend", fw)
	p.CounterVec("pip_router_backend_failures_total", "Failed forward attempts per backend.", "backend", fl)
	p.GaugeVec("pip_router_backend_state", "Per-backend breaker state: 0 closed, 1 open, 2 half-open.", "backend", open)
	rt.mu.Lock()
	pins := len(rt.handles)
	rt.mu.Unlock()
	p.Gauge("pip_router_handle_pins", "Resolve lineages pinned to their owning backend.", float64(pins))

	// Dynamic membership: the ring generation is the monotone clock of
	// cluster changes; the change counters say what moved it.
	p.Gauge("pip_router_ring_generation", "Membership generation of the current ring snapshot (monotone).", float64(snap.gen))
	p.Gauge("pip_router_backends", "Backends resident in the current snapshot (active + draining).", float64(len(snap.backends)))
	p.Gauge("pip_router_backends_draining", "Backends draining: serving pinned lineages, owning no new keys.", float64(draining))
	p.CounterVec("pip_router_membership_changes_total", "Membership changes applied, by operation.", "op", map[string]float64{
		"add":    float64(rt.addsTotal.Load()),
		"drain":  float64(rt.drainsTotal.Load()),
		"remove": float64(rt.removesTotal.Load()),
		"reload": float64(rt.reloadsTotal.Load()),
	})

	// Active health probing and hedged forwards.
	p.Counter("pip_router_probes_total", "Health probes sent across all backends.", float64(rt.probesTotal.Load()))
	p.Counter("pip_router_probe_failures_total", "Health probes that failed (error, timeout, or non-200).", float64(rt.probeFailsTotal.Load()))
	p.CounterVec("pip_router_backend_probe_failures_total", "Failed health probes per backend.", "backend", pf)
	p.Counter("pip_router_hedges_total", "Hedged forward attempts launched.", float64(rt.hedges.Load()))
	p.Counter("pip_router_hedge_wins_total", "Requests answered by a hedge attempt.", float64(rt.hedgeWins.Load()))
	p.Counter("pip_router_hedge_denied_total", "Hedge attempts refused by an exhausted retry budget.", float64(rt.hedgeDenied.Load()))
	p.Gauge("pip_router_hedge_budget_tokens", "Hedge retry-budget tokens currently available.", rt.hedge.level())

	// Distributed tracing and the anomaly flight recorder.
	p.Counter("pip_trace_dropped_total", "Trace records dropped by saturated per-trace rings.", float64(rt.traceDropped.Load()))
	tracesResident, tracesEvicted := rt.traces.stats()
	p.Gauge("pip_traces", "Distinct trace IDs resident for GET /debug/trace.", float64(tracesResident))
	p.Counter("pip_trace_evictions_total", "Trace IDs evicted from the bounded trace index.", float64(tracesEvicted))
	p.Counter("pip_flightrec_dumps_total", "Anomaly dumps taken by the flight recorder over the process lifetime.", float64(rt.flight.DumpCount()))
	p.Counter("pip_flightrec_suppressed_total", "Flight-recorder triggers swallowed by the per-reason cooldown.", float64(rt.flight.Suppressed()))
	if err := p.Err(); err != nil {
		rt.log.Error("write metrics", "err", err)
	}
}

func writeRouterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeRouterError(w http.ResponseWriter, status int, msg string) {
	writeRouterJSON(w, status, errorResponse{Error: msg})
}
