package serve

// The shard router is the horizontal-scaling front door: it owns no
// engine of its own for normal traffic, but places every module on one
// of N pipserve backends by consistent hash of the module's content and
// configuration. Identical modules therefore always land on the same
// backend, whose solution cache (and persistent store, PR 8) already
// holds the answer — the cluster's caches shard instead of duplicating.
//
// The router inherits the paper's degradation discipline end to end:
//
//   - a per-backend circuit breaker stops hammering a dead shard;
//   - a failed or shed forward (transport error, 5xx, 429, injected
//     router.forward fault) reroutes to the next distinct backend on the
//     ring, in ring order, so a killed shard's keyspace redistributes
//     deterministically;
//   - when every backend is down the router answers locally with the
//     trivially sound Ω-degraded solution (pip.AnalyzeDegraded) rather
//     than dropping the request — a sound over-approximation beats an
//     error, exactly as inside the solver.
//
// Incremental lineages (/v1/resolve handles) are pinned: a handle's
// session state lives on the backend that created it, so the router
// remembers handle→backend and routes resubmissions there regardless of
// the module hash. A lost backend loses its lineages — clients get 404
// (or a local Ω answer if everything is down) and restart the lineage,
// which is the same contract a single pipserve gives after an eviction.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// Backends are the pipserve base URLs to shard across, e.g.
	// "http://127.0.0.1:7071". At least one is required.
	Backends []string
	// Replicas is the number of virtual nodes per backend on the hash
	// ring; <= 0 means DefaultRouterReplicas. More replicas smooth the
	// keyspace split at the cost of a larger ring.
	Replicas int
	// Breaker configures the per-backend circuit breaker (zero value:
	// conservative defaults, like the Server's).
	Breaker BreakerOptions
	// Client performs the forwards; nil means a client with
	// DefaultForwardTimeout.
	Client *http.Client
	// MaxBodyBytes bounds request bodies; <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// LogWriter receives structured request logs; nil disables logging.
	LogWriter io.Writer

	// FlightRecords bounds the flight recorder's ring of recent completed
	// request records; <= 0 means obs.DefaultFlightRecords.
	FlightRecords int
	// FlightDumps bounds retained anomaly dumps (served at
	// GET /debug/flightrec); <= 0 means obs.DefaultFlightDumps.
	FlightDumps int
	// FlightDir, when non-empty, writes each anomaly dump to a
	// timestamped JSON file under it.
	FlightDir string
	// OnFlightDump, when non-nil, runs after each anomaly dump.
	OnFlightDump func(reason string)
}

// Defaults for the zero RouterOptions value.
const (
	DefaultRouterReplicas = 64
	DefaultForwardTimeout = 2 * time.Minute
)

// routerBackend is one shard: its base URL, its breaker, and counters.
type routerBackend struct {
	url       string
	breaker   *breaker
	forwarded atomic.Int64 // successful forwards
	failures  atomic.Int64 // failed attempts (transport, 5xx, 429, fault)
}

// ringPoint is one virtual node: hash position → backend index.
type ringPoint struct {
	hash uint64
	idx  int
}

// Router is the sharding reverse proxy. Create with NewRouter, expose
// via Handler.
type Router struct {
	opts     RouterOptions
	log      *slog.Logger
	mux      *http.ServeMux
	client   *http.Client
	backends []*routerBackend
	ring     []ringPoint // sorted by hash

	// handles pins resolve lineages to the backend holding their session
	// state. Bounded by dropping arbitrary entries past routerMaxHandles:
	// a dropped pin only costs the client a 404 + lineage restart.
	mu      sync.Mutex
	handles map[string]int

	draining atomic.Bool

	forwarded     atomic.Int64 // requests answered by a backend
	rerouted      atomic.Int64 // failed attempts that moved to the next backend
	degradedLocal atomic.Int64 // requests answered by the local Ω fallback
	badRequests   atomic.Int64

	// traces indexes the router's own per-trace-ID recorders; GET
	// /debug/trace merges them with the backends' spans for the same ID.
	// flight is the router's anomaly flight recorder (per-backend breaker
	// transitions and local Ω degradations).
	traces       *traceIndex
	flight       *obs.FlightRecorder
	traceDropped atomic.Uint64
}

// routerMaxHandles bounds the handle→backend pin table.
const routerMaxHandles = 4096

// NewRouter builds the shard router. It panics when no backends are
// given — a router with nothing behind it is a configuration error, not
// a runtime condition to degrade around.
func NewRouter(opts RouterOptions) *Router {
	if len(opts.Backends) == 0 {
		panic("serve.NewRouter: no backends")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = DefaultRouterReplicas
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	rt := &Router{
		opts:    opts,
		mux:     http.NewServeMux(),
		client:  opts.Client,
		handles: make(map[string]int),
		traces:  newTraceIndex(DefaultTraceIndexSize, DefaultTraceRecords),
	}
	if rt.client == nil {
		rt.client = &http.Client{Timeout: DefaultForwardTimeout}
	}
	if opts.LogWriter != nil {
		rt.log = slog.New(slog.NewJSONHandler(opts.LogWriter, nil))
	} else {
		rt.log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	// The flight recorder's dump embeds the router's own metrics scrape;
	// writeProm reads breaker snapshots, so every trigger site (breaker
	// notify below) fires after the owning mutex is released.
	rt.flight = obs.NewFlightRecorder(obs.FlightRecorderOptions{
		Records: opts.FlightRecords,
		Dumps:   opts.FlightDumps,
		Dir:     opts.FlightDir,
		Metrics: func() string {
			var b strings.Builder
			rt.writeProm(&b)
			return b.String()
		},
		OnDump: func(d *obs.Dump) {
			rt.log.Info("flight recorder dump", "reason", d.Reason, "detail", d.Detail, "file", d.File)
			if opts.OnFlightDump != nil {
				opts.OnFlightDump(d.Reason)
			}
		},
	})
	for i, u := range opts.Backends {
		b := &routerBackend{url: u, breaker: newBreaker(opts.Breaker)}
		b.breaker.notify = func(from, to breakerState) {
			switch to {
			case breakerOpen:
				rt.flight.Trigger(flightTriggerBreaker, "backend "+u+" "+from.String()+"->open")
			case breakerHalfOpen:
				rt.flight.Trigger(flightTriggerBreakerHalf, "backend "+u+" open->half-open")
			}
		}
		rt.backends = append(rt.backends, b)
		for v := 0; v < opts.Replicas; v++ {
			h := fnv.New64a()
			io.WriteString(h, u)
			h.Write([]byte{'#', byte(v), byte(v >> 8)})
			rt.ring = append(rt.ring, ringPoint{hash: h.Sum64(), idx: i})
		}
	}
	sort.Slice(rt.ring, func(a, b int) bool { return rt.ring[a].hash < rt.ring[b].hash })

	analysis := func(h http.HandlerFunc) http.HandlerFunc {
		return withRequestID(withTraceID(traced(rt.traces, rt.flight, &rt.traceDropped, "pip-router", h)))
	}
	rt.mux.HandleFunc("POST /v1/solve", analysis(rt.route))
	rt.mux.HandleFunc("POST /v1/alias", analysis(rt.route))
	rt.mux.HandleFunc("POST /v1/resolve", analysis(rt.route))
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /debug/trace", rt.handleTrace)
	rt.mux.HandleFunc("GET /debug/flightrec", rt.handleFlightrec)
	return rt
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Shutdown stops admitting new requests. Forwards already in flight run
// to completion on their own goroutines (the HTTP server's), so callers
// drain by closing the listener as usual.
func (rt *Router) Shutdown() { rt.draining.Store(true) }

// routeProbe is the subset of an analysis request the router needs: the
// module content and configuration feed the hash, the handle pins
// lineages. Unknown fields (queries, pairs, ...) pass through untouched.
type routeProbe struct {
	Name   string `json:"name"`
	MIR    string `json:"mir"`
	C      string `json:"c"`
	Config string `json:"config"`
	Budget string `json:"budget"`
	Handle string `json:"handle"`
}

// routeKey hashes what determines the answer — module content and
// configuration — so equal modules always map to the same shard and hit
// its cache. The request name is deliberately excluded: renaming a file
// must not move (and re-solve) its module.
func routeKey(p *routeProbe, query string) uint64 {
	h := fnv.New64a()
	for _, s := range []string{p.MIR, "\x00", p.C, "\x00", p.Config, "\x00", query} {
		io.WriteString(h, s)
	}
	return h.Sum64()
}

// candidates returns every backend index in ring order starting at the
// key's position — the first entry is the owner, the rest the reroute
// order when it fails. Deterministic: the same key always yields the
// same sequence.
func (rt *Router) candidates(key uint64) []int {
	start := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= key })
	out := make([]int, 0, len(rt.backends))
	seen := make(map[int]bool, len(rt.backends))
	for i := 0; i < len(rt.ring) && len(out) < len(rt.backends); i++ {
		p := rt.ring[(start+i)%len(rt.ring)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}

// route is the forwarding pipeline shared by all three analysis
// endpoints: probe the body, pick the candidate order, forward with
// failover, fall back to the local Ω answer when every shard is down.
func (rt *Router) route(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
		writeRouterError(w, http.StatusServiceUnavailable, "router is shutting down")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		rt.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, "body: "+err.Error())
		return
	}
	var probe routeProbe
	if err := json.Unmarshal(body, &probe); err != nil {
		rt.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}

	// Candidate order: the handle's pinned backend first for lineages,
	// then (or otherwise) consistent-hash ring order.
	cands := rt.candidates(routeKey(&probe, r.URL.Query().Get("config")))
	if probe.Handle != "" {
		rt.mu.Lock()
		pin, ok := rt.handles[probe.Handle]
		rt.mu.Unlock()
		if ok {
			reordered := []int{pin}
			for _, c := range cands {
				if c != pin {
					reordered = append(reordered, c)
				}
			}
			cands = reordered
		}
	}

	id := requestIDFrom(r.Context())
	traceID := traceIDFrom(r.Context())
	tc := reqTraceFrom(r.Context())
	for attempt, idx := range cands {
		b := rt.backends[idx]
		if ok, _ := b.breaker.allow(); !ok {
			if tc != nil {
				tc.lane.Event("breaker-skip", obs.S("backend", b.url))
			}
			continue // open breaker: this shard is known-dead, skip it
		}
		if attempt > 0 {
			rt.rerouted.Add(1)
		}
		var fwdSpan obs.Span
		if tc != nil {
			fwdSpan = tc.lane.Begin("forward",
				obs.S("backend", b.url), obs.N("attempt", int64(attempt)))
		}
		resp, err := rt.forward(r, b, body, id, traceID, attempt)
		if err != nil {
			b.failures.Add(1)
			b.breaker.record(true)
			fwdSpan.End(obs.S("error", err.Error()))
			rt.log.Info("forward failed", "backend", b.url, "err", err, "request_id", id)
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes))
		resp.Body.Close()
		if err != nil || resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			// A shed (429/503) or failed (5xx) backend answer is this
			// shard's problem, not the client's: record and fail over.
			b.failures.Add(1)
			b.breaker.record(true)
			fwdSpan.End(obs.N("status", int64(resp.StatusCode)), obs.S("outcome", "failover"))
			continue
		}
		b.breaker.record(false)
		b.forwarded.Add(1)
		rt.forwarded.Add(1)
		fwdSpan.End(obs.N("status", int64(resp.StatusCode)))
		if r.URL.Path == "/v1/resolve" && resp.StatusCode == http.StatusOK {
			rt.pinHandle(respBody, idx)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody)
		return
	}

	// Every shard is unreachable, shedding, or failing: answer locally
	// with the sound Ω degradation rather than dropping the request.
	rt.degradeLocally(w, r, body, &probe)
}

// forward performs one backend attempt, preserving the method, path,
// query string, body, content type, request ID, and trace context: the
// backend joins the router's trace ID (so the cluster-wide merge finds
// its spans under the same key) with a span-parent naming this forward
// attempt. The injected router.forward fault fails the attempt before
// any bytes move, exactly like a refused connection.
func (rt *Router) forward(r *http.Request, b *routerBackend, body []byte, id, traceID string, attempt int) (*http.Response, error) {
	if err := faults.Inject(faults.RouterForward); err != nil {
		return nil, err
	}
	u := b.url + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(requestIDHeader, id)
	if traceID != "" {
		req.Header.Set(traceIDHeader, traceID)
		req.Header.Set(traceParentHeader, "router:"+id+":fwd"+strconv.Itoa(attempt))
	}
	return rt.client.Do(req)
}

// pinHandle records which backend owns a lineage, from a successful
// resolve response.
func (rt *Router) pinHandle(respBody []byte, idx int) {
	var rr struct {
		Handle string `json:"handle"`
	}
	if json.Unmarshal(respBody, &rr) != nil || rr.Handle == "" {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.handles) >= routerMaxHandles {
		for h := range rt.handles { // drop an arbitrary pin; cost: one 404
			delete(rt.handles, h)
			break
		}
	}
	rt.handles[rr.Handle] = idx
}

// degradeLocally answers the request with pip.AnalyzeDegraded: every
// pointer points to external memory, everything escapes. Sound for any
// program the backends would have analyzed, and infinitely better than
// a drop — the client can distinguish it by the degraded flag and retry
// for an exact answer later.
func (rt *Router) degradeLocally(w http.ResponseWriter, r *http.Request, body []byte, probe *routeProbe) {
	mreq := moduleRequest{Name: probe.Name, MIR: probe.MIR, C: probe.C}
	m, err := parseModule(&mreq)
	if err != nil {
		rt.badRequests.Add(1)
		writeRouterError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfgName := r.URL.Query().Get("config")
	if cfgName == "" {
		cfgName = probe.Config
	}
	cfg := pip.DefaultConfig()
	if cfgName != "" {
		c, err := pip.ParseConfig(cfgName)
		if err != nil {
			rt.badRequests.Add(1)
			writeRouterError(w, http.StatusBadRequest, "config: "+err.Error())
			return
		}
		cfg = c
	}
	res := pip.AnalyzeDegraded(m)
	rt.degradedLocal.Add(1)
	// Mark the degradation on the tracing middleware's outcome writer so
	// the flight recorder sees it, and leave an event on the trace lane.
	markDegraded(w)
	if tc := reqTraceFrom(r.Context()); tc != nil {
		tc.lane.Event("degraded-local")
	}
	rt.log.Info("all backends down, served local degraded answer",
		"path", r.URL.Path, "request_id", requestIDFrom(r.Context()))

	switch r.URL.Path {
	case "/v1/alias":
		var req aliasRequest
		if err := json.Unmarshal(body, &req); err != nil || len(req.Pairs) == 0 {
			writeRouterError(w, http.StatusBadRequest, `"pairs" missing or empty`)
			return
		}
		resp := aliasResponse{Name: probe.Name, Config: cfg.String(), Degraded: true,
			Answers: make([]aliasAnswer, 0, len(req.Pairs))}
		for _, pair := range req.Pairs {
			ans := aliasAnswer{A: pair[0], B: pair[1]}
			verdict, err := res.Alias(pair[0], pair[1], req.Size)
			if err != nil {
				ans.Error = err.Error()
			} else {
				ans.Result = verdict.String()
			}
			resp.Answers = append(resp.Answers, ans)
		}
		writeRouterJSON(w, http.StatusOK, resp)
	case "/v1/resolve":
		// No backend means no session state; answer soundly without a
		// handle so the client restarts the lineage when shards return.
		var req resolveRequest
		_ = json.Unmarshal(body, &req)
		resp := resolveResponse{Name: probe.Name, Config: cfg.String(), Degraded: true,
			Escaped: res.ExternallyAccessible()}
		fillPointsTo(&resp.PointsTo, &resp.Dump, res, req.Queries)
		writeRouterJSON(w, http.StatusOK, resp)
	default: // /v1/solve
		var req solveRequest
		_ = json.Unmarshal(body, &req)
		resp := solveResponse{Name: probe.Name, Config: cfg.String(), Degraded: true,
			Escaped: res.ExternallyAccessible()}
		fillPointsTo(&resp.PointsTo, &resp.Dump, res, req.Queries)
		writeRouterJSON(w, http.StatusOK, resp)
	}
}

// fillPointsTo renders query answers (or the full dump) from a Result —
// the shared tail of the solve/resolve response shapes.
func fillPointsTo(pointsTo *map[string]pointsToEntry, dump *string, res *pip.Result, queries []string) {
	if len(queries) == 0 {
		*dump = res.Dump()
		return
	}
	*pointsTo = make(map[string]pointsToEntry, len(queries))
	for _, name := range queries {
		targets, external, err := res.PointsTo(name)
		if err != nil {
			(*pointsTo)[name] = pointsToEntry{Error: err.Error()}
			continue
		}
		if targets == nil {
			targets = []string{}
		}
		(*pointsTo)[name] = pointsToEntry{Targets: targets, External: external}
	}
}

// routerHealthz is the router's /healthz body.
type routerHealthz struct {
	Status   string `json:"status"` // "ok" | "draining"
	Backends int    `json:"backends"`
	// Open counts backends with an open breaker (known-dead shards).
	Open int `json:"open"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := routerHealthz{Status: "ok", Backends: len(rt.backends)}
	for _, b := range rt.backends {
		if st, _ := b.breaker.snapshot(); st == breakerOpen {
			resp.Open++
		}
	}
	status := http.StatusOK
	if rt.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeRouterJSON(w, status, resp)
}

// handleTrace serves GET /debug/trace?id= on the router: the router's
// own spans for that trace ID merged with every backend's spans for the
// same ID (fetched live over their /debug/trace endpoints) into one
// Chrome trace_event timeline — the cluster-wide view of the request.
// Backends that never saw the trace (404) or are unreachable contribute
// nothing; 404 only when no process has spans for the ID.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := sanitizeHeaderID(r.URL.Query().Get("id"))
	if id == "" {
		writeRouterError(w, http.StatusBadRequest, "missing or invalid ?id= trace ID")
		return
	}
	var parts []obs.TracePart
	if tr := rt.traces.get(id); tr != nil {
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err == nil {
			parts = append(parts, obs.TracePart{Process: "router", Data: buf.Bytes()})
		}
	}
	for i, b := range rt.backends {
		data, err := rt.fetchBackendTrace(r, b, id)
		if err != nil {
			rt.log.Info("backend trace fetch failed", "backend", b.url, "err", err)
			continue
		}
		if data != nil {
			parts = append(parts, obs.TracePart{Process: fmt.Sprintf("backend-%d", i), Data: data})
		}
	}
	if len(parts) == 0 {
		writeRouterError(w, http.StatusNotFound, "unknown trace ID (evicted or never seen)")
		return
	}
	merged, err := obs.MergeChrome(parts)
	if err != nil {
		writeRouterError(w, http.StatusInternalServerError, "merge: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(merged)
}

// fetchBackendTrace asks one backend for its spans under a trace ID.
// A 404 answer (the backend never saw the trace) returns (nil, nil).
func (rt *Router) fetchBackendTrace(r *http.Request, b *routerBackend, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		b.url+"/debug/trace?id="+url.QueryEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	return io.ReadAll(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes))
}

// handleFlightrec serves GET /debug/flightrec: the router's retained
// anomaly dumps (breaker transitions, local Ω degradations).
func (rt *Router) handleFlightrec(w http.ResponseWriter, r *http.Request) {
	writeRouterJSON(w, http.StatusOK, flightrecResponse{
		Dumps:      rt.flight.Dumps(),
		DumpsTotal: rt.flight.DumpCount(),
		Suppressed: rt.flight.Suppressed(),
		Recorded:   rt.flight.Recorded(),
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.writeProm(w)
}

// writeProm renders the router's Prometheus exposition; split out so the
// flight recorder can embed the same scrape in anomaly dumps.
func (rt *Router) writeProm(w io.Writer) {
	p := obs.NewPromWriter(w)
	p.Counter("pip_router_forwarded_total", "Requests answered by a backend shard.", float64(rt.forwarded.Load()))
	p.Counter("pip_router_rerouted_total", "Failed-over forward attempts (dead, shedding, or faulted shards).", float64(rt.rerouted.Load()))
	p.Counter("pip_router_degraded_local_total", "Requests answered by the local sound Ω fallback with every shard down.", float64(rt.degradedLocal.Load()))
	p.Counter("pip_router_bad_requests_total", "Requests refused with a 4xx by the router itself.", float64(rt.badRequests.Load()))
	fw := make(map[string]float64, len(rt.backends))
	fl := make(map[string]float64, len(rt.backends))
	open := make(map[string]float64, len(rt.backends))
	for _, b := range rt.backends {
		fw[b.url] = float64(b.forwarded.Load())
		fl[b.url] = float64(b.failures.Load())
		st, _ := b.breaker.snapshot()
		open[b.url] = float64(st)
	}
	p.CounterVec("pip_router_backend_forwarded_total", "Successful forwards per backend.", "backend", fw)
	p.CounterVec("pip_router_backend_failures_total", "Failed forward attempts per backend.", "backend", fl)
	p.GaugeVec("pip_router_backend_state", "Per-backend breaker state: 0 closed, 1 open, 2 half-open.", "backend", open)
	rt.mu.Lock()
	pins := len(rt.handles)
	rt.mu.Unlock()
	p.Gauge("pip_router_handle_pins", "Resolve lineages pinned to their owning backend.", float64(pins))

	// Distributed tracing and the anomaly flight recorder.
	p.Counter("pip_trace_dropped_total", "Trace records dropped by saturated per-trace rings.", float64(rt.traceDropped.Load()))
	tracesResident, tracesEvicted := rt.traces.stats()
	p.Gauge("pip_traces", "Distinct trace IDs resident for GET /debug/trace.", float64(tracesResident))
	p.Counter("pip_trace_evictions_total", "Trace IDs evicted from the bounded trace index.", float64(tracesEvicted))
	p.Counter("pip_flightrec_dumps_total", "Anomaly dumps taken by the flight recorder over the process lifetime.", float64(rt.flight.DumpCount()))
	p.Counter("pip_flightrec_suppressed_total", "Flight-recorder triggers swallowed by the per-reason cooldown.", float64(rt.flight.Suppressed()))
	if err := p.Err(); err != nil {
		rt.log.Error("write metrics", "err", err)
	}
}

func writeRouterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeRouterError(w http.ResponseWriter, status int, msg string) {
	writeRouterJSON(w, status, errorResponse{Error: msg})
}
