package bitset

import (
	"math/rand"
	"sort"
	"testing"
)

// refSet is the map-based reference model the property tests compare
// against: trivially correct, no representation switching.
type refSet map[uint32]bool

func (r refSet) add(x uint32) bool {
	if r[x] {
		return false
	}
	r[x] = true
	return true
}

func (r refSet) remove(x uint32) bool {
	if !r[x] {
		return false
	}
	delete(r, x)
	return true
}

func (r refSet) slice() []uint32 {
	out := make([]uint32, 0, len(r))
	for x := range r {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSlices(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAgainst asserts that s and its reference model agree on every
// observable: cardinality, membership, and ascending iteration.
func checkAgainst(t *testing.T, s *Set, r refSet, ctx string) {
	t.Helper()
	if s.Len() != len(r) {
		t.Fatalf("%s: Len = %d, reference has %d", ctx, s.Len(), len(r))
	}
	want := r.slice()
	if got := s.Slice(); !equalSlices(got, want) {
		t.Fatalf("%s: Slice = %v, want %v", ctx, got, want)
	}
	for _, x := range want {
		if !s.Contains(x) {
			t.Fatalf("%s: Contains(%d) = false, reference has it", ctx, x)
		}
	}
}

// TestPropertyRandomOps drives random Add/Remove/Clear/Union sequences on
// both representations (values straddle the smallMax migration threshold)
// and checks the set against the map reference after every operation.
func TestPropertyRandomOps(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := &Set{}
		r := refSet{}
		// Value range chosen so sets cross the migration threshold
		// mid-sequence in roughly half the runs.
		maxVal := uint32(smallMax + rng.Intn(4*smallMax))
		for op := 0; op < 500; op++ {
			x := uint32(rng.Intn(int(maxVal)))
			switch rng.Intn(10) {
			case 0:
				if got, want := s.Remove(x), r.remove(x); got != want {
					t.Fatalf("seed %d op %d: Remove(%d) = %v, want %v", seed, op, x, got, want)
				}
			case 1:
				s.Clear()
				r = refSet{}
			case 2, 3:
				// Union with a random other set, both directions of the
				// small/bitmap representation mix.
				o := &Set{}
				or := refSet{}
				for i := rng.Intn(2 * smallMax); i > 0; i-- {
					v := uint32(rng.Intn(int(maxVal)))
					o.Add(v)
					or.add(v)
				}
				wantAdds := 0
				for v := range or {
					if !r[v] {
						wantAdds++
					}
				}
				delta := &Set{}
				if got := s.UnionWithDelta(o, delta); got != wantAdds {
					t.Fatalf("seed %d op %d: UnionWithDelta added %d, want %d", seed, op, got, wantAdds)
				}
				if delta.Len() != wantAdds {
					t.Fatalf("seed %d op %d: delta has %d elements, want %d", seed, op, delta.Len(), wantAdds)
				}
				delta.ForEach(func(v uint32) {
					if r[v] || !or[v] {
						t.Fatalf("seed %d op %d: delta element %d was not newly added", seed, op, v)
					}
				})
				for v := range or {
					r.add(v)
				}
			default:
				if got, want := s.Add(x), r.add(x); got != want {
					t.Fatalf("seed %d op %d: Add(%d) = %v, want %v", seed, op, x, got, want)
				}
			}
			checkAgainst(t, s, r, "after op")
		}
	}
}

// TestPropertyUnionMatrix unions every pairing of representation modes and
// sizes (empty × empty up through bitmap × bitmap) and checks the result,
// the reported add count, and UnionWith/UnionWithDelta agreement.
func TestPropertyUnionMatrix(t *testing.T) {
	sizes := []int{0, 1, smallMax / 2, smallMax, smallMax + 1, 4 * smallMax}
	rng := rand.New(rand.NewSource(99))
	build := func(size int) (*Set, refSet) {
		s, r := &Set{}, refSet{}
		for i := 0; i < size; i++ {
			v := uint32(rng.Intn(6 * smallMax))
			s.Add(v)
			r.add(v)
		}
		return s, r
	}
	for _, ns := range sizes {
		for _, nt := range sizes {
			s, rs := build(ns)
			tt, rt := build(nt)
			wantAdds := 0
			for v := range rt {
				if !rs[v] {
					wantAdds++
				}
			}
			if got := s.UnionWithDelta(tt, nil); got != wantAdds {
				t.Fatalf("sizes (%d,%d): added %d, want %d", ns, nt, got, wantAdds)
			}
			for v := range rt {
				rs.add(v)
			}
			checkAgainst(t, s, rs, "after union")
			// t must be untouched by the union.
			checkAgainst(t, tt, rt, "operand after union")
		}
	}
}

// TestUnionAliasedReceiver covers s ∪ s in both representations: must be a
// no-op that reports zero additions and leaves the set intact.
func TestUnionAliasedReceiver(t *testing.T) {
	small := &Set{}
	for i := uint32(0); i < 10; i += 2 {
		small.Add(i)
	}
	big := &Set{}
	for i := uint32(0); i < 3*smallMax; i++ {
		big.Add(i * 3)
	}
	for _, s := range []*Set{{}, small, big} {
		before := s.Slice()
		if s.UnionWith(s) {
			t.Fatalf("UnionWith(self) reported change")
		}
		if got := s.UnionWithDelta(s, &Set{}); got != 0 {
			t.Fatalf("UnionWithDelta(self) added %d", got)
		}
		if !equalSlices(s.Slice(), before) {
			t.Fatalf("aliased union mutated the set: %v -> %v", before, s.Slice())
		}
	}
}

// TestUnionEmptyCases covers the empty-operand edge cases of the batched
// paths: empty ∪ X, X ∪ empty, and unions into a cleared bitmap set.
func TestUnionEmptyCases(t *testing.T) {
	full := &Set{}
	for i := uint32(0); i < 2*smallMax; i++ {
		full.Add(i)
	}
	s := &Set{}
	if got := s.UnionWithDelta(full, nil); got != full.Len() {
		t.Fatalf("empty ∪ full added %d, want %d", got, full.Len())
	}
	if !s.Equal(full) {
		t.Fatalf("empty ∪ full != full")
	}
	if got := s.UnionWithDelta(&Set{}, nil); got != 0 {
		t.Fatalf("full ∪ empty added %d", got)
	}
	// A cleared bitmap set stays in bitmap mode; union into it must still
	// count correctly from n = 0.
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("Clear left %d elements", s.Len())
	}
	if got := s.UnionWithDelta(full, nil); got != full.Len() {
		t.Fatalf("cleared ∪ full added %d, want %d", got, full.Len())
	}
}

// TestMergeSmallInPlace pins the backward in-place merge: overlapping,
// disjoint, interleaved, and superset operands that stay in slice mode.
func TestMergeSmallInPlace(t *testing.T) {
	cases := []struct{ a, b []uint32 }{
		{[]uint32{1, 3, 5}, []uint32{2, 4, 6}},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}},
		{[]uint32{10, 20}, []uint32{1, 2}},
		{[]uint32{1, 2}, []uint32{10, 20}},
		{[]uint32{5}, nil},
		{nil, []uint32{7}},
		{[]uint32{1, 2, 3, 4}, []uint32{2, 3}},
	}
	for _, c := range cases {
		s, o := &Set{}, &Set{}
		r := refSet{}
		for _, x := range c.a {
			s.Add(x)
			r.add(x)
		}
		for _, x := range c.b {
			o.Add(x)
		}
		wantAdds := 0
		for _, x := range c.b {
			if r.add(x) {
				wantAdds++
			}
		}
		delta := &Set{}
		if got := s.UnionWithDelta(o, delta); got != wantAdds {
			t.Fatalf("merge %v ∪ %v: added %d, want %d", c.a, c.b, got, wantAdds)
		}
		checkAgainst(t, s, r, "after small merge")
		if delta.Len() != wantAdds {
			t.Fatalf("merge %v ∪ %v: delta %v, want %d new", c.a, c.b, delta.Slice(), wantAdds)
		}
	}
}

// TestMigrationOnOverflowingMerge checks that a slice-mode union whose
// result exceeds smallMax lands in bitmap mode with the right contents.
func TestMigrationOnOverflowingMerge(t *testing.T) {
	s, o := &Set{}, &Set{}
	r := refSet{}
	for i := uint32(0); i < smallMax; i++ {
		s.Add(2 * i)
		r.add(2 * i)
	}
	for i := uint32(0); i < smallMax; i++ {
		o.Add(2*i + 1)
		r.add(2*i + 1)
	}
	if got := s.UnionWithDelta(o, nil); got != smallMax {
		t.Fatalf("overflowing merge added %d, want %d", got, smallMax)
	}
	if s.bits == nil {
		t.Fatalf("overflowing merge did not migrate to bitmap mode")
	}
	checkAgainst(t, s, r, "after migration")
}
