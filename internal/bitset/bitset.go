// Package bitset provides a hybrid sparse/dense set of small unsigned
// integers, used for the explicit points-to sets (Sol_e) of constraint
// variables. Most points-to sets are tiny (the paper's p50 is below 300
// elements per file across all variables), so sets start as a sorted
// uint32 slice and switch to a bitmap once they grow past a threshold.
package bitset

import "math/bits"

// smallMax is the cardinality at which a set migrates from the sorted-slice
// representation to the bitmap representation.
const smallMax = 48

// Set is a set of uint32 values. The zero value is an empty set ready to use.
type Set struct {
	small []uint32 // sorted ascending; valid while bits == nil
	bits  []uint64 // bitmap; non-nil once the set has grown
	n     int      // cardinality when in bitmap mode
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	if s.bits != nil {
		return s.n
	}
	return len(s.small)
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool { return s.Len() == 0 }

// search returns the insertion index of x in s.small.
func (s *Set) search(x uint32) int {
	lo, hi := 0, len(s.small)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.small[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports whether x is in the set.
func (s *Set) Contains(x uint32) bool {
	if s.bits != nil {
		w := int(x >> 6)
		return w < len(s.bits) && s.bits[w]&(1<<(x&63)) != 0
	}
	i := s.search(x)
	return i < len(s.small) && s.small[i] == x
}

// Add inserts x and reports whether the set changed.
func (s *Set) Add(x uint32) bool {
	if s.bits != nil {
		return s.addBit(x)
	}
	i := s.search(x)
	if i < len(s.small) && s.small[i] == x {
		return false
	}
	if len(s.small) >= smallMax {
		s.migrate()
		return s.addBit(x)
	}
	s.small = append(s.small, 0)
	copy(s.small[i+1:], s.small[i:])
	s.small[i] = x
	return true
}

func (s *Set) addBit(x uint32) bool {
	w := int(x >> 6)
	if w >= len(s.bits) {
		grown := make([]uint64, w+1+w/4)
		copy(grown, s.bits)
		s.bits = grown
	}
	mask := uint64(1) << (x & 63)
	if s.bits[w]&mask != 0 {
		return false
	}
	s.bits[w] |= mask
	s.n++
	return true
}

// migrate switches the set from slice mode to bitmap mode.
func (s *Set) migrate() {
	maxv := uint32(0)
	if len(s.small) > 0 {
		maxv = s.small[len(s.small)-1]
	}
	s.bits = make([]uint64, int(maxv>>6)+1)
	for _, x := range s.small {
		s.bits[x>>6] |= 1 << (x & 63)
	}
	s.n = len(s.small)
	s.small = nil
}

// Remove deletes x and reports whether the set changed.
func (s *Set) Remove(x uint32) bool {
	if s.bits != nil {
		w := int(x >> 6)
		if w >= len(s.bits) {
			return false
		}
		mask := uint64(1) << (x & 63)
		if s.bits[w]&mask == 0 {
			return false
		}
		s.bits[w] &^= mask
		s.n--
		return true
	}
	i := s.search(x)
	if i >= len(s.small) || s.small[i] != x {
		return false
	}
	s.small = append(s.small[:i], s.small[i+1:]...)
	return true
}

// Clear removes all elements but keeps allocated storage.
func (s *Set) Clear() {
	s.small = s.small[:0]
	for i := range s.bits {
		s.bits[i] = 0
	}
	if s.bits != nil {
		s.small = nil
	}
	s.n = 0
}

// UnionWith adds every element of t to s and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	return s.UnionWithDelta(t, nil) > 0
}

// UnionWithDelta adds every element of t to s and returns the number of
// elements actually added. When delta is non-nil, every newly added element
// is also inserted into delta — the difference-propagation idiom of the
// solver, done in one pass over whole words instead of one Add per element.
// An aliased receiver (t == s) is a no-op returning 0.
func (s *Set) UnionWithDelta(t *Set, delta *Set) int {
	if t == s || t.Len() == 0 {
		return 0
	}
	// Pre-migrate when the merged cardinality could not stay in slice mode,
	// so the union below runs on whole words instead of element inserts.
	if s.bits == nil && t.bits == nil && len(s.small)+len(t.small) > smallMax {
		if u := s.mergeSmall(t, delta); u >= 0 {
			return u
		}
		s.migrate()
	}
	if s.bits == nil && t.bits != nil {
		s.migrate()
	}
	if s.bits != nil {
		if t.bits != nil {
			return s.unionWords(t, delta)
		}
		added := 0
		for _, x := range t.small {
			if s.addBit(x) {
				added++
				if delta != nil {
					delta.Add(x)
				}
			}
		}
		return added
	}
	// Both in slice mode with a merged size that fits: sorted two-pointer
	// merge, O(|s|+|t|) instead of a binary search + memmove per element.
	if u := s.mergeSmall(t, delta); u >= 0 {
		return u
	}
	s.migrate()
	added := 0
	for _, x := range t.small {
		if s.addBit(x) {
			added++
			if delta != nil {
				delta.Add(x)
			}
		}
	}
	return added
}

// unionWords merges t (bitmap) into s (bitmap) one 64-bit word at a time.
func (s *Set) unionWords(t *Set, delta *Set) int {
	if len(t.bits) > len(s.bits) {
		grown := make([]uint64, len(t.bits))
		copy(grown, s.bits)
		s.bits = grown
	}
	added := 0
	for i, w := range t.bits {
		old := s.bits[i]
		fresh := w &^ old
		if fresh == 0 {
			continue
		}
		s.bits[i] = old | w
		added += bits.OnesCount64(fresh)
		if delta != nil {
			for fresh != 0 {
				b := bits.TrailingZeros64(fresh)
				delta.Add(uint32(i<<6 + b))
				fresh &= fresh - 1
			}
		}
	}
	s.n += added
	return added
}

// mergeSmall merges t.small into s.small with a two-pointer sorted merge.
// It returns -1 (and leaves s untouched) when the merged set would outgrow
// slice mode; the caller then migrates to the bitmap representation.
func (s *Set) mergeSmall(t *Set, delta *Set) int {
	// First pass: count the union without mutating.
	i, j, union := 0, 0, 0
	for i < len(s.small) && j < len(t.small) {
		a, b := s.small[i], t.small[j]
		if a <= b {
			i++
		}
		if b <= a {
			j++
		}
		union++
		if union > smallMax {
			return -1
		}
	}
	union += len(s.small) - i + len(t.small) - j
	if union > smallMax {
		return -1
	}
	added := union - len(s.small)
	if added == 0 {
		return 0
	}
	// Second pass: merge backward in place so no scratch slice is needed.
	s.small = append(s.small, make([]uint32, added)...)
	i, j = len(s.small)-added-1, len(t.small)-1
	for k := len(s.small) - 1; j >= 0; k-- {
		if i >= 0 && s.small[i] > t.small[j] {
			s.small[k] = s.small[i]
			i--
			continue
		}
		if i >= 0 && s.small[i] == t.small[j] {
			s.small[k] = s.small[i]
			i--
			j--
			continue
		}
		s.small[k] = t.small[j]
		if delta != nil {
			delta.Add(t.small[j])
		}
		j--
	}
	return added
}

// ForEach calls fn for every element in ascending order.
func (s *Set) ForEach(fn func(uint32)) {
	if s.bits != nil {
		for wi, w := range s.bits {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				fn(uint32(wi<<6 + b))
				w &= w - 1
			}
		}
		return
	}
	for _, x := range s.small {
		fn(x)
	}
}

// AppendTo appends the elements in ascending order to dst and returns the
// extended slice.
func (s *Set) AppendTo(dst []uint32) []uint32 {
	s.ForEach(func(x uint32) { dst = append(dst, x) })
	return dst
}

// Slice returns the elements as a fresh ascending slice.
func (s *Set) Slice() []uint32 {
	return s.AppendTo(make([]uint32, 0, s.Len()))
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{}
	if s.bits != nil {
		c.bits = make([]uint64, len(s.bits))
		copy(c.bits, s.bits)
		c.n = s.n
		return c
	}
	c.small = append([]uint32(nil), s.small...)
	return c
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	eq := true
	s.ForEach(func(x uint32) {
		if eq && !t.Contains(x) {
			eq = false
		}
	})
	return eq
}

// ApproxBytes estimates the heap bytes backing the set.
func (s *Set) ApproxBytes() int {
	if s.bits != nil {
		return 8 * cap(s.bits)
	}
	return 4 * cap(s.small)
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	if s.Len() > t.Len() {
		s, t = t, s
	}
	if s.bits != nil && t.bits != nil {
		n := len(s.bits)
		if len(t.bits) < n {
			n = len(t.bits)
		}
		for i := 0; i < n; i++ {
			if s.bits[i]&t.bits[i] != 0 {
				return true
			}
		}
		return false
	}
	found := false
	s.ForEach(func(x uint32) {
		if !found && t.Contains(x) {
			found = true
		}
	})
	return found
}
