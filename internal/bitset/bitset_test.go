package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var s Set
	if s.Len() != 0 || !s.Empty() {
		t.Fatalf("zero value not empty: len=%d", s.Len())
	}
	if s.Contains(0) || s.Contains(42) {
		t.Fatal("empty set contains elements")
	}
	if s.Remove(7) {
		t.Fatal("Remove on empty set reported a change")
	}
}

func TestAddContains(t *testing.T) {
	var s Set
	if !s.Add(5) {
		t.Fatal("first Add(5) reported no change")
	}
	if s.Add(5) {
		t.Fatal("second Add(5) reported a change")
	}
	if !s.Contains(5) {
		t.Fatal("Contains(5) = false after Add")
	}
	if s.Contains(4) || s.Contains(6) {
		t.Fatal("Contains on neighbors of the only element")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestSmallOrdering(t *testing.T) {
	var s Set
	for _, x := range []uint32{9, 3, 7, 1, 100, 0} {
		s.Add(x)
	}
	got := s.Slice()
	want := []uint32{0, 1, 3, 7, 9, 100}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestMigration(t *testing.T) {
	var s Set
	// Push far beyond the small threshold and verify behavior is unchanged.
	for i := uint32(0); i < 4*smallMax; i++ {
		if !s.Add(i * 3) {
			t.Fatalf("Add(%d) reported no change", i*3)
		}
	}
	if s.bits == nil {
		t.Fatal("set did not migrate to bitmap mode")
	}
	if s.Len() != 4*smallMax {
		t.Fatalf("Len = %d, want %d", s.Len(), 4*smallMax)
	}
	for i := uint32(0); i < 4*smallMax; i++ {
		if !s.Contains(i * 3) {
			t.Fatalf("Contains(%d) = false", i*3)
		}
		if s.Contains(i*3 + 1) {
			t.Fatalf("Contains(%d) = true", i*3+1)
		}
	}
}

func TestRemove(t *testing.T) {
	var s Set
	for i := uint32(0); i < 200; i++ {
		s.Add(i)
	}
	for i := uint32(0); i < 200; i += 2 {
		if !s.Remove(i) {
			t.Fatalf("Remove(%d) reported no change", i)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	for i := uint32(0); i < 200; i++ {
		if s.Contains(i) != (i%2 == 1) {
			t.Fatalf("Contains(%d) = %v", i, s.Contains(i))
		}
	}
}

func TestClear(t *testing.T) {
	for _, n := range []uint32{5, 500} {
		var s Set
		for i := uint32(0); i < n; i++ {
			s.Add(i)
		}
		s.Clear()
		if s.Len() != 0 {
			t.Fatalf("after Clear, Len = %d", s.Len())
		}
		if s.Contains(1) {
			t.Fatal("after Clear, Contains(1)")
		}
		s.Add(3)
		if s.Len() != 1 || !s.Contains(3) {
			t.Fatal("set unusable after Clear")
		}
	}
}

func TestUnionWith(t *testing.T) {
	cases := []struct{ a, b []uint32 }{
		{[]uint32{1, 2, 3}, []uint32{3, 4, 5}},
		{nil, []uint32{7}},
		{[]uint32{7}, nil},
		{mkRange(0, 300), mkRange(150, 450)},
		{mkRange(0, 10), mkRange(200, 600)},
	}
	for _, c := range cases {
		var a, b Set
		for _, x := range c.a {
			a.Add(x)
		}
		for _, x := range c.b {
			b.Add(x)
		}
		want := map[uint32]bool{}
		for _, x := range c.a {
			want[x] = true
		}
		for _, x := range c.b {
			want[x] = true
		}
		changed := a.UnionWith(&b)
		if a.Len() != len(want) {
			t.Fatalf("union len = %d, want %d", a.Len(), len(want))
		}
		for x := range want {
			if !a.Contains(x) {
				t.Fatalf("union missing %d", x)
			}
		}
		wantChanged := len(want) != len(c.a)
		if changed != wantChanged {
			t.Fatalf("UnionWith changed = %v, want %v", changed, wantChanged)
		}
	}
}

func TestUnionWithSelf(t *testing.T) {
	var s Set
	s.Add(1)
	s.Add(2)
	if s.UnionWith(&s) {
		t.Fatal("UnionWith(self) reported a change")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after self-union", s.Len())
	}
}

func TestCloneEqual(t *testing.T) {
	for _, n := range []int{3, 300} {
		var s Set
		for i := 0; i < n; i++ {
			s.Add(uint32(i * 7))
		}
		c := s.Clone()
		if !s.Equal(c) || !c.Equal(&s) {
			t.Fatal("clone not equal to original")
		}
		c.Add(999999)
		if s.Equal(c) {
			t.Fatal("Equal true after diverging")
		}
		if s.Contains(999999) {
			t.Fatal("clone aliases original storage")
		}
	}
}

func TestIntersects(t *testing.T) {
	var a, b Set
	for i := uint32(0); i < 100; i += 2 {
		a.Add(i)
	}
	for i := uint32(1); i < 100; i += 2 {
		b.Add(i)
	}
	if a.Intersects(&b) {
		t.Fatal("disjoint sets intersect")
	}
	b.Add(50)
	if !a.Intersects(&b) {
		t.Fatal("overlapping sets do not intersect")
	}
	var empty Set
	if a.Intersects(&empty) || empty.Intersects(&a) {
		t.Fatal("empty set intersects")
	}
}

func TestForEachEarlyElements(t *testing.T) {
	var s Set
	s.Add(64) // exactly on a word boundary in bitmap mode
	s.Add(63)
	s.Add(0)
	for i := uint32(0); i < 200; i++ {
		s.Add(i * 64) // force bitmap with word-boundary values
	}
	var got []uint32
	s.ForEach(func(x uint32) { got = append(got, x) })
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("ForEach not ascending")
	}
	if len(got) != s.Len() {
		t.Fatalf("ForEach visited %d, Len = %d", len(got), s.Len())
	}
}

func mkRange(lo, hi uint32) []uint32 {
	var out []uint32
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// Property: the Set behaves identically to map[uint32]bool under a random
// sequence of Add/Remove/Contains operations.
func TestQuickMatchesMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		ref := map[uint32]bool{}
		for _, op := range ops {
			x := uint32(op) % 512
			switch rng.Intn(3) {
			case 0:
				if s.Add(x) != !ref[x] {
					return false
				}
				ref[x] = true
			case 1:
				if s.Remove(x) != ref[x] {
					return false
				}
				delete(ref, x)
			case 2:
				if s.Contains(x) != ref[x] {
					return false
				}
			}
			if s.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative with respect to membership.
func TestQuickUnionCommutative(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a1, b1, a2, b2 Set
		for _, x := range xs {
			a1.Add(uint32(x))
			a2.Add(uint32(x))
		}
		for _, y := range ys {
			b1.Add(uint32(y))
			b2.Add(uint32(y))
		}
		a1.UnionWith(&b1) // a1 = xs ∪ ys
		b2.UnionWith(&a2) // b2 = ys ∪ xs
		return a1.Equal(&b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s Set
		for j := uint32(0); j < 32; j++ {
			s.Add(j * 5)
		}
	}
}

func BenchmarkUnionLarge(b *testing.B) {
	var x, y Set
	for i := uint32(0); i < 4096; i++ {
		x.Add(i * 2)
		y.Add(i*2 + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.UnionWith(&y)
	}
}
