package bitset

import "testing"

// These tests pin the corner branches of the batched word-level paths
// that the randomized property suite reaches only probabilistically —
// CI gates on package coverage, so each branch gets a deterministic hit.

func bitmapSet(xs ...uint32) *Set {
	s := &Set{}
	for i := uint32(0); i < smallMax+1; i++ {
		s.Add(i)
	}
	s.Clear()
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

func TestRemoveBeyondBitmapRange(t *testing.T) {
	s := bitmapSet(1, 2, 3)
	if s.Remove(1 << 20) {
		t.Fatal("removing an element beyond the bitmap reported a change")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d after no-op remove", s.Len())
	}
}

func TestMergeSmallStaysSmallOnOverlap(t *testing.T) {
	// Combined raw lengths exceed smallMax but the union deduplicates to
	// a size that still fits, so the two-pointer merge must succeed
	// in slice mode instead of migrating.
	a, b := &Set{}, &Set{}
	for i := uint32(0); i < smallMax-8; i++ {
		a.Add(i)
	}
	for i := uint32(smallMax - 16); i < smallMax; i++ {
		b.Add(i) // overlaps a on [smallMax-16, smallMax-8)
	}
	if a.Len()+b.Len() <= smallMax {
		t.Fatalf("test premise broken: %d + %d <= %d", a.Len(), b.Len(), smallMax)
	}
	delta := &Set{}
	added := a.UnionWithDelta(b, delta)
	if a.bits != nil {
		t.Fatal("overlapping small union migrated to bitmap mode")
	}
	if added != delta.Len() {
		t.Fatalf("added %d but delta holds %d", added, delta.Len())
	}
	for _, x := range b.Slice() {
		if !a.Contains(x) {
			t.Fatalf("union lost %d", x)
		}
	}
}

func TestUnionBitmapReceiverSmallOperand(t *testing.T) {
	s := bitmapSet(100, 200)
	small := &Set{}
	small.Add(100)
	small.Add(101)
	small.Add(300)
	delta := &Set{}
	if added := s.UnionWithDelta(small, delta); added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	for _, want := range []uint32{100, 101, 200, 300} {
		if !s.Contains(want) {
			t.Fatalf("missing %d", want)
		}
	}
	if delta.Len() != 2 || !delta.Contains(101) || !delta.Contains(300) {
		t.Fatalf("delta = %v", delta.Slice())
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	a, b := &Set{}, &Set{}
	a.Add(1)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("sets of different cardinality compared equal")
	}
}

func TestApproxBytes(t *testing.T) {
	small := &Set{}
	small.Add(7)
	if small.ApproxBytes() <= 0 {
		t.Fatal("slice-mode estimate not positive")
	}
	big := bitmapSet(1, 64, 128)
	if small.ApproxBytes() >= big.ApproxBytes() {
		t.Fatalf("bitmap estimate %d not larger than slice estimate %d",
			big.ApproxBytes(), small.ApproxBytes())
	}
}

func TestIntersectsBitmapPair(t *testing.T) {
	a := bitmapSet(10, 70, 500)
	b := bitmapSet(500, 900)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("shared element 500 not detected in word scan")
	}
	c := bitmapSet(11, 71)
	if a.Intersects(c) {
		t.Fatal("disjoint bitmaps reported intersecting")
	}
}

func TestIntersectsSmallScan(t *testing.T) {
	a, b := &Set{}, &Set{}
	a.Add(3)
	a.Add(9)
	b.Add(9)
	b.Add(20)
	if !a.Intersects(b) {
		t.Fatal("shared element 9 not found via element scan")
	}
	b.Remove(9)
	if a.Intersects(b) {
		t.Fatal("disjoint small sets reported intersecting")
	}
}
