package callgraph

import (
	"strings"
	"testing"

	"github.com/pip-analysis/pip/internal/cfront"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

func build(t *testing.T, src string) (*Graph, *ir.Module, *core.Gen, *core.Solution) {
	t.Helper()
	m, err := cfront.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	gen := core.Generate(m)
	sol := core.MustSolve(gen.Problem, core.DefaultConfig())
	return Build(m, gen, sol), m, gen, sol
}

const dispatchSrc = `
extern void unknown_sink(void *f);

static int alpha(int v) { return v + 1; }
static int beta(int v) { return v + 2; }
static int gamma_unused(int v) { return v + 3; }

static int (*table[2])(int);

static void init() {
    table[0] = alpha;
    table[1] = beta;
}

int run(int i, int v) {
    init();
    return table[i](v);
}

void leak() {
    unknown_sink(alpha);
}
`

func TestIndirectCallResolution(t *testing.T) {
	g, m, _, _ := build(t, dispatchSrc)
	run := m.Func("run")
	callees, external := g.Callees(run)
	names := map[string]bool{}
	for _, f := range callees {
		names[f.FName] = true
	}
	if !names["alpha"] || !names["beta"] || !names["init"] {
		t.Fatalf("run should call init, alpha, beta: %v", names)
	}
	if names["gamma_unused"] {
		t.Fatal("gamma_unused is not in the table; it must not be a callee")
	}
	// The table holds only module-local functions, but it could have been
	// overwritten externally? table is static and never escapes, so no.
	if external {
		t.Fatal("indirect call through a private table must not reach external code")
	}
}

func TestExternallyCallable(t *testing.T) {
	g, m, _, _ := build(t, dispatchSrc)
	if !g.Nodes[m.Func("run")].ExternallyCallable {
		t.Fatal("exported run must be externally callable")
	}
	if g.Nodes[m.Func("beta")].ExternallyCallable {
		t.Fatal("static beta never escapes; not externally callable")
	}
	// alpha was passed to unknown_sink: its address escaped, external
	// modules may call it.
	if !g.Nodes[m.Func("alpha")].ExternallyCallable {
		t.Fatal("alpha escaped through unknown_sink; it must be externally callable")
	}
}

func TestExternalCallEdges(t *testing.T) {
	g, m, _, _ := build(t, dispatchSrc)
	_, external := g.Callees(m.Func("leak"))
	if !external {
		t.Fatal("leak calls an imported function: external edge required")
	}
}

func TestUnknownFunctionPointer(t *testing.T) {
	src := `
extern void *get_handler();

int invoke(int v) {
    int (*h)(int) = (int(*)(int))get_handler();
    return h(v);
}
`
	g, m, _, _ := build(t, src)
	_, external := g.Callees(m.Func("invoke"))
	if !external {
		t.Fatal("call through unknown pointer must include external targets")
	}
}

func TestReachability(t *testing.T) {
	g, m, _, _ := build(t, dispatchSrc)
	// From run: init, alpha, beta reachable; gamma not.
	reach := g.Reachable([]*ir.Function{m.Func("run")}, false)
	if !reach[m.Func("alpha")] || !reach[m.Func("init")] {
		t.Fatal("alpha/init must be reachable from run")
	}
	if reach[m.Func("gamma_unused")] {
		t.Fatal("gamma_unused must be unreachable")
	}
	// Sound entry set: everything externally callable. alpha escaped, so
	// it is a root; gamma_unused still unreachable (dead code).
	reach2 := g.Reachable(nil, true)
	if !reach2[m.Func("alpha")] || !reach2[m.Func("run")] {
		t.Fatal("external roots missing")
	}
	if reach2[m.Func("gamma_unused")] {
		t.Fatal("gamma_unused must stay unreachable")
	}
}

func TestDOT(t *testing.T) {
	g, _, _, _ := build(t, dispatchSrc)
	dot := g.DOT()
	for _, frag := range []string{
		"digraph callgraph",
		`"run" -> "alpha"`,
		`"run" -> "beta"`,
		`"leak" -> external`,
		`external -> "run"`,
		`external -> "alpha"`,
	} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, dot)
		}
	}
	if strings.Contains(dot, `"run" -> "gamma_unused"`) {
		t.Fatal("spurious edge to gamma_unused")
	}
}

func TestCallThroughNull(t *testing.T) {
	src := `
int crash() {
    int (*f)(void) = NULL;
    return f();
}
`
	g, m, _, _ := build(t, src)
	callees, external := g.Callees(m.Func("crash"))
	if len(callees) != 0 || external {
		t.Fatalf("call through null should have no targets: %v external=%v", callees, external)
	}
}
