// Package callgraph builds a sound call graph from a points-to solution —
// one of the downstream clients the paper names (Section I: "call graph
// and mod/ref summary creation"). Indirect calls resolve through the
// points-to sets of their callee pointers; calls through pointers of
// unknown origin, and calls arriving from external modules, are
// represented explicitly so the graph stays sound for incomplete programs.
package callgraph

import (
	"fmt"
	"sort"
	"strings"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

// Edge is one call site with its resolved targets.
type Edge struct {
	Site *ir.Instr
	// Targets are the module-local functions the call may reach.
	Targets []*ir.Function
	// External reports whether the call may also reach functions in
	// external modules (callee pointer of unknown origin, or an imported
	// function).
	External bool
}

// Node is a function in the call graph.
type Node struct {
	Func *ir.Function
	// Calls lists the function's call sites.
	Calls []*Edge
	// ExternallyCallable reports whether external modules may call this
	// function (its address escaped or it is exported).
	ExternallyCallable bool
}

// Graph is a whole-module call graph.
type Graph struct {
	Module *ir.Module
	Nodes  map[*ir.Function]*Node
	// funcOfMem resolves abstract memory locations back to functions.
	funcOfMem map[core.VarID]*ir.Function
}

// Build constructs the call graph from an analyzed module.
func Build(m *ir.Module, gen *core.Gen, sol *core.Solution) *Graph {
	g := &Graph{
		Module:    m,
		Nodes:     map[*ir.Function]*Node{},
		funcOfMem: map[core.VarID]*ir.Function{},
	}
	for _, f := range m.Funcs {
		if mem, ok := gen.MemOf[f]; ok {
			g.funcOfMem[mem] = f
		}
	}
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		node := &Node{Func: f}
		if mem, ok := gen.MemOf[f]; ok {
			node.ExternallyCallable = sol.Escaped(mem)
		}
		g.Nodes[f] = node
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				node.Calls = append(node.Calls, g.resolveCall(in, gen, sol))
			}
		}
	}
	return g
}

// resolveCall computes the target set of one call site.
func (g *Graph) resolveCall(in *ir.Instr, gen *core.Gen, sol *core.Solution) *Edge {
	e := &Edge{Site: in}
	addTarget := func(f *ir.Function) {
		for _, t := range e.Targets {
			if t == f {
				return
			}
		}
		if f.IsDecl() {
			// Imported function: behaves as external code.
			e.External = true
			return
		}
		e.Targets = append(e.Targets, f)
	}
	switch callee := in.Callee().(type) {
	case *ir.Function:
		addTarget(callee)
	default:
		id, ok := gen.VarOf[in.Callee()]
		if !ok {
			// Call through a value the analysis does not model (null,
			// undef): it traps; no targets.
			return e
		}
		for _, x := range sol.PointsTo(id) {
			if x == core.OmegaPointee {
				e.External = true
				continue
			}
			if f, isFunc := g.funcOfMem[x]; isFunc {
				addTarget(f)
			}
			// Non-function pointees are ill-typed call targets; calling
			// them is undefined behaviour, so they add no edges.
		}
		sort.Slice(e.Targets, func(i, j int) bool {
			return e.Targets[i].FName < e.Targets[j].FName
		})
	}
	return e
}

// Callees returns the set of module-local functions f may call (directly
// or indirectly), plus whether it may call into external modules.
func (g *Graph) Callees(f *ir.Function) ([]*ir.Function, bool) {
	node := g.Nodes[f]
	if node == nil {
		return nil, false
	}
	seen := map[*ir.Function]bool{}
	external := false
	var out []*ir.Function
	for _, e := range node.Calls {
		if e.External {
			external = true
		}
		for _, t := range e.Targets {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FName < out[j].FName })
	return out, external
}

// Reachable returns every module-local function transitively reachable
// from the roots. When fromExternal is true, all externally callable
// functions are added as roots (the sound entry set of an incomplete
// program).
func (g *Graph) Reachable(roots []*ir.Function, fromExternal bool) map[*ir.Function]bool {
	work := append([]*ir.Function{}, roots...)
	if fromExternal {
		for f, n := range g.Nodes {
			if n.ExternallyCallable {
				work = append(work, f)
			}
		}
	}
	seen := map[*ir.Function]bool{}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[f] {
			continue
		}
		seen[f] = true
		callees, _ := g.Callees(f)
		work = append(work, callees...)
	}
	return seen
}

// DOT renders the call graph in Graphviz format. External code is drawn as
// a dashed node.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph callgraph {\n")
	b.WriteString("  external [label=\"<external modules>\", style=dashed];\n")
	var funcs []*ir.Function
	for f := range g.Nodes {
		funcs = append(funcs, f)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].FName < funcs[j].FName })
	for _, f := range funcs {
		node := g.Nodes[f]
		fmt.Fprintf(&b, "  %q;\n", f.FName)
		if node.ExternallyCallable {
			fmt.Fprintf(&b, "  external -> %q;\n", f.FName)
		}
		emitted := map[string]bool{}
		callsExternal := false
		for _, e := range node.Calls {
			for _, t := range e.Targets {
				key := f.FName + "->" + t.FName
				if !emitted[key] {
					emitted[key] = true
					fmt.Fprintf(&b, "  %q -> %q;\n", f.FName, t.FName)
				}
			}
			if e.External {
				callsExternal = true
			}
		}
		if callsExternal {
			fmt.Fprintf(&b, "  %q -> external;\n", f.FName)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
