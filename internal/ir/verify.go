package ir

import "fmt"

// Verify checks structural well-formedness of a module: unique names,
// terminated blocks, operand arities, and basic type sanity. It returns the
// first problem found, or nil.
func Verify(m *Module) error {
	for _, g := range m.Globals {
		if g.GName == "" {
			return fmt.Errorf("global with empty name")
		}
		if g.Elem == nil {
			return fmt.Errorf("global @%s has no element type", g.GName)
		}
	}
	for _, f := range m.Funcs {
		if err := verifyFunc(f); err != nil {
			return fmt.Errorf("func @%s: %w", f.FName, err)
		}
	}
	return nil
}

func verifyFunc(f *Function) error {
	if f.Sig == nil {
		return fmt.Errorf("missing signature")
	}
	if len(f.Params) != len(f.Sig.Params) {
		return fmt.Errorf("have %d params, signature wants %d", len(f.Params), len(f.Sig.Params))
	}
	if f.IsDecl() {
		if f.Linkage != Declared {
			return fmt.Errorf("bodyless function must have declare linkage")
		}
		return nil
	}
	if f.Linkage == Declared {
		return fmt.Errorf("declared function has a body")
	}
	blocks := map[string]bool{}
	names := map[string]bool{}
	for _, p := range f.Params {
		if names[p.PName] {
			return fmt.Errorf("duplicate name %%%s", p.PName)
		}
		names[p.PName] = true
	}
	for _, b := range f.Blocks {
		if blocks[b.BName] {
			return fmt.Errorf("duplicate block %s", b.BName)
		}
		blocks[b.BName] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s is empty", b.BName)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return fmt.Errorf("block %s does not end in a terminator", b.BName)
				}
				return fmt.Errorf("block %s has terminator %s mid-block", b.BName, in.Op)
			}
			if in.Op.HasResult() {
				if in.IName == "" {
					return fmt.Errorf("block %s: %s lacks a result name", b.BName, in.Op)
				}
				if names[in.IName] {
					return fmt.Errorf("duplicate name %%%s", in.IName)
				}
				names[in.IName] = true
			}
			if err := verifyInstr(in); err != nil {
				return fmt.Errorf("block %s: %s: %w", b.BName, in, err)
			}
		}
	}
	// All operands must be defined somewhere in the function or be
	// module-level/constant values.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				switch v := a.(type) {
				case *Instr:
					if v.Parent == nil || v.Parent.Parent != f {
						return fmt.Errorf("%s uses instruction from another function", in)
					}
				case *Param:
					if v.Parent != f {
						return fmt.Errorf("%s uses foreign parameter %%%s", in, v.PName)
					}
				}
			}
			for _, t := range in.Blocks {
				if t == nil || t.Parent != f {
					return fmt.Errorf("%s targets a foreign or nil block", in)
				}
			}
		}
	}
	return nil
}

func wantArgs(in *Instr, n int) error {
	if len(in.Args) != n {
		return fmt.Errorf("want %d operands, have %d", n, len(in.Args))
	}
	return nil
}

func wantPtr(v Value, what string) error {
	if _, ok := v.Type().(PointerType); !ok {
		return fmt.Errorf("%s must be ptr-typed, is %s", what, v.Type())
	}
	return nil
}

func verifyInstr(in *Instr) error {
	switch in.Op {
	case OpAlloca:
		if in.Ty == nil {
			return fmt.Errorf("alloca without element type")
		}
		return nil
	case OpLoad:
		if err := wantArgs(in, 1); err != nil {
			return err
		}
		return wantPtr(in.Args[0], "load address")
	case OpStore:
		if err := wantArgs(in, 2); err != nil {
			return err
		}
		return wantPtr(in.Args[1], "store address")
	case OpGEP:
		if len(in.Args) < 2 {
			return fmt.Errorf("gep needs a base and at least one index")
		}
		return wantPtr(in.Args[0], "gep base")
	case OpMemcpy:
		if err := wantArgs(in, 3); err != nil {
			return err
		}
		if err := wantPtr(in.Args[0], "memcpy dst"); err != nil {
			return err
		}
		return wantPtr(in.Args[1], "memcpy src")
	case OpBitcast, OpPtrToInt, OpIntToPtr:
		return wantArgs(in, 1)
	case OpPhi:
		if len(in.Args) == 0 || len(in.Args) != len(in.Blocks) {
			return fmt.Errorf("phi args/blocks mismatch: %d vs %d", len(in.Args), len(in.Blocks))
		}
		return nil
	case OpSelect:
		return wantArgs(in, 3)
	case OpCall:
		if len(in.Args) < 1 {
			return fmt.Errorf("call without callee")
		}
		return wantPtr(in.Args[0], "callee")
	case OpRet:
		if len(in.Args) > 1 {
			return fmt.Errorf("ret with %d operands", len(in.Args))
		}
		return nil
	case OpBr:
		if len(in.Blocks) != 1 {
			return fmt.Errorf("br needs one target")
		}
		return nil
	case OpCondBr:
		if err := wantArgs(in, 1); err != nil {
			return err
		}
		if len(in.Blocks) != 2 {
			return fmt.Errorf("condbr needs two targets")
		}
		return nil
	case OpUnreachable:
		return nil
	case OpBin:
		if !IsBinKind(in.Sub) {
			return fmt.Errorf("unknown binary op %q", in.Sub)
		}
		return wantArgs(in, 2)
	case OpICmp:
		if !IsICmpPred(in.Sub) {
			return fmt.Errorf("unknown icmp predicate %q", in.Sub)
		}
		return wantArgs(in, 2)
	default:
		return fmt.Errorf("unknown opcode %d", in.Op)
	}
}
