package ir

import (
	"fmt"
	"strings"
)

// Op enumerates MIR instruction opcodes.
type Op uint8

const (
	OpInvalid Op = iota
	// Memory.
	OpAlloca // %x = alloca T            (one abstract stack object per site)
	OpLoad   // %x = load T, p
	OpStore  // store v, p
	OpGEP    // %x = gep T, p, idx...    (pointer arithmetic; field-insensitive for the analysis)
	OpMemcpy // memcpy dst, src, len     (raw byte copy; transfers pointees)
	// Casts and conversions.
	OpBitcast  // %x = bitcast T, v
	OpPtrToInt // %x = ptrtoint p        (exposes pointees: Ω ⊒ p)
	OpIntToPtr // %x = inttoptr v        (unknown origin: x ⊒ Ω)
	// Value merges.
	OpPhi    // %x = phi T, [v, bb]...
	OpSelect // %x = select c, a, b
	// Calls and returns.
	OpCall // [%x =] call T, callee(args...)
	OpRet  // ret [v]
	// Control flow.
	OpBr     // br bb
	OpCondBr // condbr c, bb1, bb2
	OpUnreachable
	// Scalar computation.
	OpBin  // %x = <add|sub|mul|div|rem|and|or|xor|shl|shr> T, a, b
	OpICmp // %x = icmp <pred>, a, b
)

var opNames = [...]string{
	OpInvalid:     "invalid",
	OpAlloca:      "alloca",
	OpLoad:        "load",
	OpStore:       "store",
	OpGEP:         "gep",
	OpMemcpy:      "memcpy",
	OpBitcast:     "bitcast",
	OpPtrToInt:    "ptrtoint",
	OpIntToPtr:    "inttoptr",
	OpPhi:         "phi",
	OpSelect:      "select",
	OpCall:        "call",
	OpRet:         "ret",
	OpBr:          "br",
	OpCondBr:      "condbr",
	OpUnreachable: "unreachable",
	OpBin:         "bin",
	OpICmp:        "icmp",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool {
	switch op {
	case OpRet, OpBr, OpCondBr, OpUnreachable:
		return true
	}
	return false
}

// HasResult reports whether op produces an SSA value.
func (op Op) HasResult() bool {
	switch op {
	case OpStore, OpMemcpy, OpRet, OpBr, OpCondBr, OpUnreachable:
		return false
	}
	return true
}

// Instr is a single MIR instruction. A uniform struct keeps the parser,
// printer, and analyses simple; Op decides which fields are meaningful.
type Instr struct {
	Op    Op
	IName string // SSA result name ("" when no result)
	T     Type   // result type (Void when no result)
	Ty    Type   // auxiliary type: alloca/load/gep element type, bitcast target
	Args  []Value
	// Blocks holds control-flow block references: phi incoming blocks
	// (aligned with Args), or br/condbr targets.
	Blocks []*Block
	// Sub is the binary-op kind ("add", "sub", ...) or icmp predicate
	// ("eq", "ne", "lt", "le", "gt", "ge").
	Sub    string
	Parent *Block
}

func (in *Instr) Type() Type {
	if in.T == nil {
		return Void
	}
	return in.T
}

func (in *Instr) Ident() string { return "%" + in.IName }
func (in *Instr) Name() string  { return in.IName }

// Callee returns the called value for a call instruction.
func (in *Instr) Callee() Value { return in.Args[0] }

// CallArgs returns the argument operands of a call instruction.
func (in *Instr) CallArgs() []Value { return in.Args[1:] }

// String renders the instruction in MIR textual syntax.
func (in *Instr) String() string {
	var b strings.Builder
	if in.Op.HasResult() {
		fmt.Fprintf(&b, "%%%s = ", in.IName)
	}
	switch in.Op {
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %s", in.Ty)
	case OpLoad:
		fmt.Fprintf(&b, "load %s, %s", in.Ty, in.Args[0].Ident())
	case OpStore:
		fmt.Fprintf(&b, "store %s, %s", in.Args[0].Ident(), in.Args[1].Ident())
	case OpGEP:
		fmt.Fprintf(&b, "gep %s, %s", in.Ty, in.Args[0].Ident())
		for _, a := range in.Args[1:] {
			fmt.Fprintf(&b, ", %s", a.Ident())
		}
	case OpMemcpy:
		fmt.Fprintf(&b, "memcpy %s, %s, %s",
			in.Args[0].Ident(), in.Args[1].Ident(), in.Args[2].Ident())
	case OpBitcast:
		fmt.Fprintf(&b, "bitcast %s, %s", in.T, in.Args[0].Ident())
	case OpPtrToInt:
		fmt.Fprintf(&b, "ptrtoint %s", in.Args[0].Ident())
	case OpIntToPtr:
		fmt.Fprintf(&b, "inttoptr %s", in.Args[0].Ident())
	case OpPhi:
		fmt.Fprintf(&b, "phi %s", in.T)
		for i, a := range in.Args {
			fmt.Fprintf(&b, ", [%s, %s]", a.Ident(), in.Blocks[i].BName)
		}
	case OpSelect:
		fmt.Fprintf(&b, "select %s, %s, %s",
			in.Args[0].Ident(), in.Args[1].Ident(), in.Args[2].Ident())
	case OpCall:
		fmt.Fprintf(&b, "call %s, %s(", in.Type(), in.Args[0].Ident())
		for i, a := range in.Args[1:] {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Ident())
		}
		b.WriteString(")")
	case OpRet:
		b.WriteString("ret")
		if len(in.Args) > 0 {
			fmt.Fprintf(&b, " %s", in.Args[0].Ident())
		}
	case OpBr:
		fmt.Fprintf(&b, "br %s", in.Blocks[0].BName)
	case OpCondBr:
		fmt.Fprintf(&b, "condbr %s, %s, %s",
			in.Args[0].Ident(), in.Blocks[0].BName, in.Blocks[1].BName)
	case OpUnreachable:
		b.WriteString("unreachable")
	case OpBin:
		fmt.Fprintf(&b, "%s %s, %s, %s", in.Sub, in.T, in.Args[0].Ident(), in.Args[1].Ident())
	case OpICmp:
		fmt.Fprintf(&b, "icmp %s, %s, %s", in.Sub, in.Args[0].Ident(), in.Args[1].Ident())
	default:
		fmt.Fprintf(&b, "<%s>", in.Op)
	}
	return b.String()
}

// BinKinds lists the valid Sub values for OpBin.
var BinKinds = []string{"add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr"}

// ICmpPreds lists the valid Sub values for OpICmp.
var ICmpPreds = []string{"eq", "ne", "lt", "le", "gt", "ge"}

// IsBinKind reports whether s names a binary-op kind.
func IsBinKind(s string) bool {
	for _, k := range BinKinds {
		if s == k {
			return true
		}
	}
	return false
}

// IsICmpPred reports whether s names an icmp predicate.
func IsICmpPred(s string) bool {
	for _, p := range ICmpPreds {
		if s == p {
			return true
		}
	}
	return false
}
