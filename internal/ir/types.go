// Package ir implements MIR, a typed SSA intermediate representation that
// stands in for LLVM IR in this reproduction. MIR covers every instruction
// class that is observable by a flow-insensitive points-to analysis (paper
// Section II-A): stack and heap allocation, loads and stores, pointer
// arithmetic (getelementptr), value and pointer casts including
// ptrtoint/inttoptr, phi/select merges, direct and indirect calls, returns,
// and raw memory copies. Pointers are opaque (`ptr`), as in modern LLVM;
// loads, stores, and geps carry the accessed type explicitly.
package ir

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all MIR types.
type Type interface {
	String() string
	isType()
}

// VoidType is the type of instructions that produce no value.
type VoidType struct{}

// IntType is an integer type of the given bit width (i1, i8, i16, i32, i64).
type IntType struct{ Bits int }

// FloatType is a floating-point type of the given bit width (f32, f64).
type FloatType struct{ Bits int }

// PointerType is the opaque pointer type `ptr`. All pointers share it.
type PointerType struct{}

// ArrayType is a fixed-length array.
type ArrayType struct {
	Elem Type
	Len  int
}

// StructType is a (possibly named) aggregate. Named structs are registered
// in the enclosing Module and referenced by name in the textual format.
type StructType struct {
	Name   string // "" for anonymous literal structs
	Fields []Type
}

// FuncType is a function signature. It appears in function definitions and
// declarations only; function *values* have type ptr.
type FuncType struct {
	Ret      Type
	Params   []Type
	Variadic bool
}

func (VoidType) isType()    {}
func (IntType) isType()     {}
func (FloatType) isType()   {}
func (PointerType) isType() {}
func (*ArrayType) isType()  {}
func (*StructType) isType() {}
func (*FuncType) isType()   {}

func (VoidType) String() string    { return "void" }
func (t IntType) String() string   { return fmt.Sprintf("i%d", t.Bits) }
func (t FloatType) String() string { return fmt.Sprintf("f%d", t.Bits) }
func (PointerType) String() string { return "ptr" }

func (t *ArrayType) String() string {
	return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
}

func (t *StructType) String() string {
	if t.Name != "" {
		return "%" + t.Name
	}
	fields := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		fields[i] = f.String()
	}
	return "{ " + strings.Join(fields, ", ") + " }"
}

func (t *FuncType) String() string {
	params := make([]string, len(t.Params))
	for i, p := range t.Params {
		params[i] = p.String()
	}
	if t.Variadic {
		params = append(params, "...")
	}
	return fmt.Sprintf("func(%s) -> %s", strings.Join(params, ", "), t.Ret)
}

// Singleton instances for the common scalar types.
var (
	Void = VoidType{}
	I1   = IntType{1}
	I8   = IntType{8}
	I16  = IntType{16}
	I32  = IntType{32}
	I64  = IntType{64}
	F32  = FloatType{32}
	F64  = FloatType{64}
	Ptr  = PointerType{}
)

// PointerCompatible reports whether values of type t may hold or contain a
// pointer (paper Section II-A): pointers themselves, and aggregates with at
// least one pointer-compatible element. Integers are never pointer
// compatible under the PNVI-ae-udi provenance model (paper Section III-C).
func PointerCompatible(t Type) bool {
	switch t := t.(type) {
	case PointerType:
		return true
	case *ArrayType:
		return PointerCompatible(t.Elem)
	case *StructType:
		for _, f := range t.Fields {
			if PointerCompatible(f) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// TypesEqual reports structural equality of two types. Named structs compare
// by name; anonymous structs compare field-wise.
func TypesEqual(a, b Type) bool {
	switch a := a.(type) {
	case VoidType:
		_, ok := b.(VoidType)
		return ok
	case IntType:
		bi, ok := b.(IntType)
		return ok && a.Bits == bi.Bits
	case FloatType:
		bf, ok := b.(FloatType)
		return ok && a.Bits == bf.Bits
	case PointerType:
		_, ok := b.(PointerType)
		return ok
	case *ArrayType:
		ba, ok := b.(*ArrayType)
		return ok && a.Len == ba.Len && TypesEqual(a.Elem, ba.Elem)
	case *StructType:
		bs, ok := b.(*StructType)
		if !ok {
			return false
		}
		if a.Name != "" || bs.Name != "" {
			return a.Name == bs.Name
		}
		if len(a.Fields) != len(bs.Fields) {
			return false
		}
		for i := range a.Fields {
			if !TypesEqual(a.Fields[i], bs.Fields[i]) {
				return false
			}
		}
		return true
	case *FuncType:
		bf, ok := b.(*FuncType)
		if !ok || a.Variadic != bf.Variadic || len(a.Params) != len(bf.Params) {
			return false
		}
		if !TypesEqual(a.Ret, bf.Ret) {
			return false
		}
		for i := range a.Params {
			if !TypesEqual(a.Params[i], bf.Params[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// SizeOf returns the size of t in bytes under a simple 64-bit layout model
// (pointers are 8 bytes, no padding beyond natural field alignment is
// modeled). It is used by the BasicAA-style client for offset reasoning.
func SizeOf(t Type) int64 {
	switch t := t.(type) {
	case IntType:
		if t.Bits <= 8 {
			return 1
		}
		return int64(t.Bits / 8)
	case FloatType:
		return int64(t.Bits / 8)
	case PointerType:
		return 8
	case *ArrayType:
		return int64(t.Len) * SizeOf(t.Elem)
	case *StructType:
		var sz int64
		for _, f := range t.Fields {
			sz += SizeOf(f)
		}
		return sz
	default:
		return 0
	}
}

// FieldOffset returns the byte offset of field i in struct t under the same
// layout model as SizeOf.
func FieldOffset(t *StructType, i int) int64 {
	var off int64
	for j := 0; j < i && j < len(t.Fields); j++ {
		off += SizeOf(t.Fields[j])
	}
	return off
}
