package ir

import (
	"fmt"
	"strings"
)

// Value is anything that can appear as an instruction operand: constants,
// globals, functions, parameters, and instruction results.
type Value interface {
	Type() Type
	// Ident returns the operand spelling of the value, e.g. "%r", "@f",
	// "42:i32", or "null".
	Ident() string
}

// Linkage describes the cross-module visibility of a global or function
// (paper Section III-A: exported and imported symbols are the roots of the
// externally accessible set).
type Linkage uint8

const (
	// Internal linkage corresponds to C `static`: the symbol is invisible
	// to external modules.
	Internal Linkage = iota
	// Exported linkage corresponds to a non-static C definition: external
	// modules may name, read, write, and call the symbol.
	Exported
	// Declared marks a symbol that is declared but defined in some other
	// module (C `extern` declarations and function prototypes).
	Declared
)

func (l Linkage) String() string {
	switch l {
	case Internal:
		return "internal"
	case Exported:
		return "export"
	case Declared:
		return "declare"
	default:
		return fmt.Sprintf("Linkage(%d)", uint8(l))
	}
}

// ConstInt is an integer constant.
type ConstInt struct {
	Val int64
	T   IntType
}

func (c *ConstInt) Type() Type    { return c.T }
func (c *ConstInt) Ident() string { return fmt.Sprintf("%d:%s", c.Val, c.T) }

// ConstFloat is a floating-point constant.
type ConstFloat struct {
	Val float64
	T   FloatType
}

func (c *ConstFloat) Type() Type    { return c.T }
func (c *ConstFloat) Ident() string { return fmt.Sprintf("%g:%s", c.Val, c.T) }

// ConstNull is the null pointer constant.
type ConstNull struct{}

func (*ConstNull) Type() Type    { return Ptr }
func (*ConstNull) Ident() string { return "null" }

// ConstUndef is an undefined value of a given type.
type ConstUndef struct{ T Type }

func (c *ConstUndef) Type() Type    { return c.T }
func (c *ConstUndef) Ident() string { return "undef:" + c.T.String() }

// ConstZero is an all-zeros aggregate or scalar initializer.
type ConstZero struct{ T Type }

func (c *ConstZero) Type() Type    { return c.T }
func (c *ConstZero) Ident() string { return "zero:" + c.T.String() }

// ConstAggregate is a brace-initialized aggregate constant, used for
// global array/struct initializers such as function-pointer tables.
// Elements may be scalar constants or symbol addresses.
type ConstAggregate struct {
	T     Type
	Elems []Value
}

func (c *ConstAggregate) Type() Type { return c.T }
func (c *ConstAggregate) Ident() string {
	parts := make([]string, len(c.Elems))
	for i, e := range c.Elems {
		parts[i] = e.Ident()
	}
	return "{ " + strings.Join(parts, ", ") + " }"
}

// Global is a module-level variable. As a Value it denotes the *address* of
// the variable and therefore has type ptr; Elem is the allocated type.
type Global struct {
	GName   string
	Elem    Type
	Init    Value // nil for zero-initialized or declared globals
	Linkage Linkage
}

func (g *Global) Type() Type    { return Ptr }
func (g *Global) Ident() string { return "@" + g.GName }
func (g *Global) Name() string  { return g.GName }

// Param is a function parameter.
type Param struct {
	PName  string
	T      Type
	Index  int
	Parent *Function
}

func (p *Param) Type() Type    { return p.T }
func (p *Param) Ident() string { return "%" + p.PName }
func (p *Param) Name() string  { return p.PName }

// Function is a function definition or declaration. As a Value it denotes
// the function's address and has type ptr.
type Function struct {
	FName   string
	Sig     *FuncType
	Params  []*Param
	Blocks  []*Block
	Linkage Linkage
}

func (f *Function) Type() Type    { return Ptr }
func (f *Function) Ident() string { return "@" + f.FName }
func (f *Function) Name() string  { return f.FName }

// IsDecl reports whether f is a declaration without a body.
func (f *Function) IsDecl() bool { return len(f.Blocks) == 0 }

// Entry returns the entry block, or nil for declarations.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Block is a basic block: a label followed by a list of instructions, the
// last of which is a terminator.
type Block struct {
	BName  string
	Instrs []*Instr
	Parent *Function
}

func (b *Block) Name() string { return b.BName }

// Terminator returns the block's final instruction, or nil if the block is
// empty or unterminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}
