package ir

import "fmt"

// Builder constructs MIR functions programmatically. It is used by the
// mini-C frontend's lowering pass and by the synthetic workload generator.
type Builder struct {
	M    *Module
	F    *Function
	B    *Block
	next int // counter for auto-generated value names
}

// NewBuilder returns a builder adding to module m.
func NewBuilder(m *Module) *Builder { return &Builder{M: m} }

// fresh returns a fresh SSA name.
func (b *Builder) fresh() string {
	b.next++
	return fmt.Sprintf("t%d", b.next)
}

// NewFunc starts a new function and its entry block, making both current.
func (b *Builder) NewFunc(name string, sig *FuncType, paramNames []string, linkage Linkage) *Function {
	f := &Function{FName: name, Sig: sig, Linkage: linkage}
	for i, pt := range sig.Params {
		pn := fmt.Sprintf("p%d", i)
		if i < len(paramNames) && paramNames[i] != "" {
			pn = paramNames[i]
		}
		f.Params = append(f.Params, &Param{PName: pn, T: pt, Index: i, Parent: f})
	}
	if err := b.M.AddFunc(f); err != nil {
		panic(err)
	}
	b.F = f
	b.B = b.NewBlock("entry")
	return f
}

// DeclareFunc adds an external function declaration (no body).
func (b *Builder) DeclareFunc(name string, sig *FuncType) *Function {
	f := &Function{FName: name, Sig: sig, Linkage: Declared}
	for i, pt := range sig.Params {
		f.Params = append(f.Params, &Param{PName: fmt.Sprintf("p%d", i), T: pt, Index: i, Parent: f})
	}
	if err := b.M.AddFunc(f); err != nil {
		panic(err)
	}
	return f
}

// NewBlock appends a block to the current function and returns it. It does
// not change the insertion point; use SetBlock for that.
func (b *Builder) NewBlock(name string) *Block {
	blk := &Block{BName: name, Parent: b.F}
	b.F.Blocks = append(b.F.Blocks, blk)
	return blk
}

// SetBlock moves the insertion point to blk.
func (b *Builder) SetBlock(blk *Block) { b.B = blk }

// emit appends in to the current block and returns it.
func (b *Builder) emit(in *Instr) *Instr {
	in.Parent = b.B
	b.B.Instrs = append(b.B.Instrs, in)
	return in
}

// value emits a result-producing instruction with an auto-generated name.
func (b *Builder) value(in *Instr) *Instr {
	in.IName = b.fresh()
	return b.emit(in)
}

// Alloca emits a stack allocation of type t.
func (b *Builder) Alloca(t Type) *Instr {
	return b.value(&Instr{Op: OpAlloca, T: Ptr, Ty: t})
}

// Load emits a typed load through p.
func (b *Builder) Load(t Type, p Value) *Instr {
	return b.value(&Instr{Op: OpLoad, T: t, Ty: t, Args: []Value{p}})
}

// Store emits a store of v through p.
func (b *Builder) Store(v, p Value) *Instr {
	return b.emit(&Instr{Op: OpStore, T: Void, Args: []Value{v, p}})
}

// GEP emits pointer arithmetic over base type t.
func (b *Builder) GEP(t Type, p Value, indices ...Value) *Instr {
	return b.value(&Instr{Op: OpGEP, T: Ptr, Ty: t, Args: append([]Value{p}, indices...)})
}

// Memcpy emits a raw memory copy.
func (b *Builder) Memcpy(dst, src, n Value) *Instr {
	return b.emit(&Instr{Op: OpMemcpy, T: Void, Args: []Value{dst, src, n}})
}

// Bitcast emits a value reinterpretation to type t.
func (b *Builder) Bitcast(t Type, v Value) *Instr {
	return b.value(&Instr{Op: OpBitcast, T: t, Ty: t, Args: []Value{v}})
}

// PtrToInt emits a pointer-to-integer conversion (address exposure).
func (b *Builder) PtrToInt(p Value) *Instr {
	return b.value(&Instr{Op: OpPtrToInt, T: I64, Args: []Value{p}})
}

// IntToPtr emits an integer-to-pointer conversion (unknown-origin pointer).
func (b *Builder) IntToPtr(v Value) *Instr {
	return b.value(&Instr{Op: OpIntToPtr, T: Ptr, Args: []Value{v}})
}

// Phi emits a phi node; incoming values and blocks must be parallel slices.
func (b *Builder) Phi(t Type, vals []Value, blocks []*Block) *Instr {
	return b.value(&Instr{Op: OpPhi, T: t, Args: vals, Blocks: blocks})
}

// Select emits a conditional select.
func (b *Builder) Select(cond, a, c Value) *Instr {
	return b.value(&Instr{Op: OpSelect, T: a.Type(), Args: []Value{cond, a, c}})
}

// Call emits a call; callee may be a *Function (direct) or any ptr-typed
// value (indirect). retType Void makes it a statement call.
func (b *Builder) Call(retType Type, callee Value, args ...Value) *Instr {
	// Calls always carry a result name, even when void, which keeps the
	// textual format uniform; void results simply cannot be used.
	return b.value(&Instr{Op: OpCall, T: retType, Args: append([]Value{callee}, args...)})
}

// Ret emits a return; v may be nil for void returns.
func (b *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, T: Void}
	if v != nil {
		in.Args = []Value{v}
	}
	return b.emit(in)
}

// Br emits an unconditional branch.
func (b *Builder) Br(target *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, T: Void, Blocks: []*Block{target}})
}

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Value, then, els *Block) *Instr {
	return b.emit(&Instr{Op: OpCondBr, T: Void, Args: []Value{cond}, Blocks: []*Block{then, els}})
}

// Unreachable emits an unreachable terminator.
func (b *Builder) Unreachable() *Instr {
	return b.emit(&Instr{Op: OpUnreachable, T: Void})
}

// Bin emits a binary scalar operation.
func (b *Builder) Bin(kind string, t Type, x, y Value) *Instr {
	return b.value(&Instr{Op: OpBin, T: t, Sub: kind, Args: []Value{x, y}})
}

// ICmp emits an integer/pointer comparison producing i1.
func (b *Builder) ICmp(pred string, x, y Value) *Instr {
	return b.value(&Instr{Op: OpICmp, T: I1, Sub: pred, Args: []Value{x, y}})
}

// Int returns an integer constant.
func Int(v int64, t IntType) *ConstInt { return &ConstInt{Val: v, T: t} }

// Null returns the null pointer constant.
func Null() *ConstNull { return &ConstNull{} }

// GlobalVar adds a global variable to the builder's module.
func (b *Builder) GlobalVar(name string, elem Type, init Value, linkage Linkage) *Global {
	g := &Global{GName: name, Elem: elem, Init: init, Linkage: linkage}
	if err := b.M.AddGlobal(g); err != nil {
		panic(err)
	}
	return g
}
