package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in MIR textual syntax. The output round-trips
// through Parse.
func Print(m *Module) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %q\n", m.Name)
	for _, s := range m.Structs {
		fields := make([]string, len(s.Fields))
		for i, f := range s.Fields {
			fields[i] = f.String()
		}
		fmt.Fprintf(&b, "struct %%%s = { %s }\n", s.Name, strings.Join(fields, ", "))
	}
	for _, g := range m.Globals {
		if g.Linkage == Declared {
			fmt.Fprintf(&b, "declare global @%s : %s\n", g.GName, g.Elem)
			continue
		}
		fmt.Fprintf(&b, "global @%s : %s", g.GName, g.Elem)
		if g.Init != nil {
			fmt.Fprintf(&b, " = %s", g.Init.Ident())
		}
		fmt.Fprintf(&b, " %s\n", g.Linkage)
	}
	for _, f := range m.Funcs {
		if f.IsDecl() {
			fmt.Fprintf(&b, "declare func @%s%s\n", f.FName, sigString(f.Sig, nil))
			continue
		}
		fmt.Fprintf(&b, "\nfunc @%s%s %s {\n", f.FName, sigString(f.Sig, f.Params), f.Linkage)
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:\n", blk.BName)
			for _, in := range blk.Instrs {
				fmt.Fprintf(&b, "  %s\n", in)
			}
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func sigString(sig *FuncType, params []*Param) string {
	var parts []string
	for i, pt := range sig.Params {
		if params != nil {
			parts = append(parts, fmt.Sprintf("%%%s: %s", params[i].PName, pt))
		} else {
			parts = append(parts, pt.String())
		}
	}
	if sig.Variadic {
		parts = append(parts, "...")
	}
	s := "(" + strings.Join(parts, ", ") + ")"
	if _, isVoid := sig.Ret.(VoidType); !isVoid {
		s += " -> " + sig.Ret.String()
	}
	return s
}
