package ir

import (
	"strings"
	"testing"
)

func TestPointerCompatible(t *testing.T) {
	cases := []struct {
		t    Type
		want bool
	}{
		{I32, false},
		{I64, false},
		{F64, false},
		{Void, false},
		{Ptr, true},
		{&ArrayType{Elem: I32, Len: 4}, false},
		{&ArrayType{Elem: Ptr, Len: 4}, true},
		{&StructType{Fields: []Type{I32, I64}}, false},
		{&StructType{Fields: []Type{I32, Ptr}}, true},
		{&StructType{Fields: []Type{I32, &ArrayType{Elem: Ptr, Len: 2}}}, true},
	}
	for _, c := range cases {
		if got := PointerCompatible(c.t); got != c.want {
			t.Errorf("PointerCompatible(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTypesEqual(t *testing.T) {
	a := &StructType{Fields: []Type{I32, Ptr}}
	b := &StructType{Fields: []Type{I32, Ptr}}
	if !TypesEqual(a, b) {
		t.Fatal("structurally equal anonymous structs differ")
	}
	named1 := &StructType{Name: "S", Fields: []Type{I32}}
	named2 := &StructType{Name: "S", Fields: []Type{I64}}
	if !TypesEqual(named1, named2) {
		t.Fatal("named structs must compare by name")
	}
	if TypesEqual(named1, a) {
		t.Fatal("named vs anonymous struct equal")
	}
	if TypesEqual(I32, I64) || TypesEqual(I32, F32) || TypesEqual(Ptr, I64) {
		t.Fatal("distinct scalars equal")
	}
	f1 := &FuncType{Ret: Ptr, Params: []Type{I32}}
	f2 := &FuncType{Ret: Ptr, Params: []Type{I32}}
	f3 := &FuncType{Ret: Ptr, Params: []Type{I32}, Variadic: true}
	if !TypesEqual(f1, f2) || TypesEqual(f1, f3) {
		t.Fatal("func type equality")
	}
}

func TestSizeOfAndOffsets(t *testing.T) {
	s := &StructType{Fields: []Type{I32, Ptr, I8}}
	if got := SizeOf(s); got != 4+8+1 {
		t.Fatalf("SizeOf(struct) = %d", got)
	}
	if got := FieldOffset(s, 1); got != 4 {
		t.Fatalf("FieldOffset(1) = %d", got)
	}
	if got := FieldOffset(s, 2); got != 12 {
		t.Fatalf("FieldOffset(2) = %d", got)
	}
	if got := SizeOf(&ArrayType{Elem: I16, Len: 5}); got != 10 {
		t.Fatalf("SizeOf(array) = %d", got)
	}
}

// figure1 is the paper's Figure 1 program in MIR form.
const figure1 = `
module "figure1"
global @x : i32 = 0:i32 internal
global @y : i32 = 0:i32 internal
global @z : i32 = 0:i32 export
global @p : ptr = @x export
declare func @getPtr() -> ptr

func @callMe(%q: ptr) export {
entry:
  %w = alloca i32
  %r = call ptr, @getPtr()
  %c = icmp eq, %r, null
  condbr %c, isnull, done
isnull:
  br done
done:
  %r2 = phi ptr, [%r, entry], [%w, isnull]
  ret
}
`

func TestParseFigure1(t *testing.T) {
	m, err := Parse(figure1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "figure1" {
		t.Fatalf("module name = %q", m.Name)
	}
	if len(m.Globals) != 4 {
		t.Fatalf("globals = %d", len(m.Globals))
	}
	if g := m.Global("x"); g == nil || g.Linkage != Internal {
		t.Fatal("global x missing or wrong linkage")
	}
	if g := m.Global("p"); g == nil || g.Init != m.Global("x") {
		t.Fatal("global p should be initialized with @x")
	}
	gp := m.Func("getPtr")
	if gp == nil || !gp.IsDecl() || gp.Linkage != Declared {
		t.Fatal("getPtr should be a declaration")
	}
	cm := m.Func("callMe")
	if cm == nil || cm.IsDecl() || cm.Linkage != Exported {
		t.Fatal("callMe should be an exported definition")
	}
	if len(cm.Blocks) != 3 {
		t.Fatalf("callMe blocks = %d", len(cm.Blocks))
	}
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	m1, err := Parse(figure1)
	if err != nil {
		t.Fatal(err)
	}
	text1 := Print(m1)
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text1)
	}
	text2 := Print(m2)
	if text1 != text2 {
		t.Fatalf("round-trip mismatch:\n--- first\n%s\n--- second\n%s", text1, text2)
	}
}

func TestParseStructAndAggregates(t *testing.T) {
	src := `
module "s"
struct %Node = { i32, ptr }
global @head : %Node internal
global @arr : [4 x ptr] internal

func @touch() internal {
entry:
  %n = alloca %Node
  %f = gep %Node, %n, 0:i64, 1:i64
  %v = load ptr, %f
  store %v, @arr
  %anon = alloca { i32, { ptr, i8 } }
  ret
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Struct("Node")
	if s == nil || len(s.Fields) != 2 {
		t.Fatal("struct Node not parsed")
	}
	if !PointerCompatible(s) {
		t.Fatal("Node should be pointer compatible")
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	// Round-trip with structs.
	m2, err := Parse(Print(m))
	if err != nil {
		t.Fatalf("round-trip: %v\n%s", err, Print(m))
	}
	if Print(m) != Print(m2) {
		t.Fatal("struct round-trip mismatch")
	}
}

func TestParseAllInstructions(t *testing.T) {
	src := `
module "all"
global @g : ptr = null export
declare func @ext(ptr, ...) -> i32

func @f(%a: ptr, %n: i32) -> ptr export {
entry:
  %s = alloca [8 x i8]
  %v = load i64, %a
  store 1:i64, %a
  %idx = gep i8, %s, %n
  memcpy %s, %a, 8:i64
  %b = bitcast ptr, %s
  %i = ptrtoint %a
  %q = inttoptr %i
  %sum = add i64, %v, %i
  %d = div i64, %sum, 2
  %c = icmp lt, %d, 100
  condbr %c, big, small
big:
  %r1 = call i32, @ext(%a, %n)
  br out
small:
  %r2 = call i32, %a(%q)
  br out
out:
  %m = phi ptr, [%s, big], [%q, small]
  %sel = select %c, %m, %a
  ret %sel
}

func @dead() internal {
entry:
  unreachable
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	if m.NumInstrs() != 20 {
		t.Fatalf("NumInstrs = %d, want 20", m.NumInstrs())
	}
	m2, err := Parse(Print(m))
	if err != nil {
		t.Fatalf("round-trip: %v\n%s", err, Print(m))
	}
	if Print(m) != Print(m2) {
		t.Fatal("all-instruction round-trip mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"dup global", `global @a : i32 export` + "\n" + `global @a : i32 export`, "duplicate"},
		{"unknown struct", `global @a : %Missing export`, "unknown struct"},
		{"unknown symbol", `global @a : ptr = @missing export`, "unknown symbol"},
		{"missing linkage", `global @a : i32`, "linkage"},
		{"bad instr", "func @f() export {\nentry:\n  fly %x\n}", "unknown instruction"},
		{"unknown local", "func @f() export {\nentry:\n  %v = load i32, %nope\n  ret\n}", "unknown local"},
		{"dup local", "func @f() export {\nentry:\n  %v = alloca i32\n  %v = alloca i32\n  ret\n}", "duplicate definition"},
		{"unknown block", "func @f() export {\nentry:\n  br nowhere\n}", "unknown block"},
		{"result on store", "func @f(%p: ptr) export {\nentry:\n  %x = store 1:i32, %p\n  ret\n}", "does not produce"},
		{"no result on load", "func @f(%p: ptr) export {\nentry:\n  load i32, %p\n  ret\n}", "requires a result"},
		{"unterminated string", `module "oops`, "unterminated"},
		{"stray char", "global @a : i32 export $", "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error, got none", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestVerifyCatchesBadModules(t *testing.T) {
	// Unterminated block.
	m := NewModule("bad")
	b := NewBuilder(m)
	b.NewFunc("f", &FuncType{Ret: Void}, nil, Exported)
	b.Alloca(I32) // no terminator
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("Verify = %v, want terminator error", err)
	}
	b.Ret(nil)
	if err := Verify(m); err != nil {
		t.Fatalf("Verify after fix: %v", err)
	}

	// Cross-function operand use.
	m2 := NewModule("bad2")
	b2 := NewBuilder(m2)
	b2.NewFunc("a", &FuncType{Ret: Void}, nil, Exported)
	p := b2.Alloca(I32)
	b2.Ret(nil)
	b2.NewFunc("b", &FuncType{Ret: Void}, nil, Exported)
	b2.Load(I32, p) // uses instruction from @a
	b2.Ret(nil)
	if err := Verify(m2); err == nil || !strings.Contains(err.Error(), "another function") {
		t.Fatalf("Verify = %v, want cross-function error", err)
	}
}

func TestBuilderProducesVerifiableIR(t *testing.T) {
	m := NewModule("built")
	b := NewBuilder(m)
	g := b.GlobalVar("data", Ptr, Null(), Exported)
	ext := b.DeclareFunc("mystery", &FuncType{Ret: Ptr, Params: []Type{Ptr}})

	f := b.NewFunc("run", &FuncType{Ret: Ptr, Params: []Type{Ptr, I32}}, []string{"in", "n"}, Exported)
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	slot := b.Alloca(Ptr)
	b.Store(f.Params[0], slot)
	b.Br(loop)
	b.SetBlock(loop)
	v := b.Load(Ptr, slot)
	r := b.Call(Ptr, ext, v)
	b.Store(r, g)
	c := b.ICmp("eq", r, Null())
	b.CondBr(c, exit, loop)
	b.SetBlock(exit)
	b.Ret(r)

	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	// Builder output must round-trip through text as well.
	text := Print(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("parse of printed builder output: %v\n%s", err, text)
	}
	if Print(m2) != text {
		t.Fatal("builder round-trip mismatch")
	}
}

func TestModuleLookups(t *testing.T) {
	m := NewModule("lk")
	b := NewBuilder(m)
	b.GlobalVar("g", I32, nil, Internal)
	b.DeclareFunc("f", &FuncType{Ret: Void})
	if m.Global("g") == nil || m.Func("f") == nil {
		t.Fatal("lookups failed")
	}
	if m.Global("f") != nil || m.Func("g") != nil {
		t.Fatal("cross-namespace lookups should fail")
	}
	if err := m.AddGlobal(&Global{GName: "f", Elem: I32}); err == nil {
		t.Fatal("global/function name collision not rejected")
	}
	if err := m.AddFunc(&Function{FName: "g", Sig: &FuncType{Ret: Void}}); err == nil {
		t.Fatal("function/global name collision not rejected")
	}
}

func TestNegativeAndTypedConstants(t *testing.T) {
	src := `
func @f(%p: ptr) export {
entry:
  store -7:i32, %p
  store 3.5:f32, %p
  store -2.5, %p
  store undef:i64, %p
  store zero:[2 x ptr], %p
  ret -1:i32
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("f")
	ins := f.Blocks[0].Instrs
	if c, ok := ins[0].Args[0].(*ConstInt); !ok || c.Val != -7 || c.T.Bits != 32 {
		t.Fatalf("bad const: %v", ins[0].Args[0])
	}
	if c, ok := ins[1].Args[0].(*ConstFloat); !ok || c.Val != 3.5 {
		t.Fatalf("bad float const: %v", ins[1].Args[0])
	}
	if c, ok := ins[2].Args[0].(*ConstFloat); !ok || c.Val != -2.5 || c.T.Bits != 64 {
		t.Fatalf("bad default float const: %v", ins[2].Args[0])
	}
	if _, ok := ins[3].Args[0].(*ConstUndef); !ok {
		t.Fatal("undef const")
	}
	if _, ok := ins[4].Args[0].(*ConstZero); !ok {
		t.Fatal("zero const")
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestTerminatorAccess(t *testing.T) {
	m := MustParse(figure1)
	f := m.Func("callMe")
	entry := f.Blocks[0]
	term := entry.Terminator()
	if term == nil || term.Op != OpCondBr {
		t.Fatalf("entry terminator = %v", term)
	}
	empty := &Block{BName: "e"}
	if empty.Terminator() != nil {
		t.Fatal("empty block has terminator")
	}
}

func TestVariadicDeclRoundTrip(t *testing.T) {
	src := "declare func @printf(ptr, ...) -> i32\n"
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("printf")
	if f == nil || !f.Sig.Variadic {
		t.Fatal("variadic lost")
	}
	if !strings.Contains(Print(m), "...") {
		t.Fatal("variadic not printed")
	}
}

func TestAggregateInitializerRoundTrip(t *testing.T) {
	src := `
module "agg"
global @a : i32 = 0:i32 internal
func @f() internal {
entry:
  ret
}
global @tab : [3 x ptr] = { @a, null, @f } internal
global @cfg : { i32, ptr } = { 7:i32, @a } internal
global @nested : [2 x [2 x i64]] = { { 1:i64, 2:i64 }, { 3:i64, 4:i64 } } internal
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tab := m.Global("tab")
	agg, ok := tab.Init.(*ConstAggregate)
	if !ok || len(agg.Elems) != 3 {
		t.Fatalf("tab init = %#v", tab.Init)
	}
	if agg.Elems[0] != Value(m.Global("a")) {
		t.Fatalf("elem 0 = %v", agg.Elems[0])
	}
	if _, isNull := agg.Elems[1].(*ConstNull); !isNull {
		t.Fatalf("elem 1 = %v", agg.Elems[1])
	}
	if agg.Elems[2] != Value(m.Func("f")) {
		t.Fatalf("elem 2 = %v", agg.Elems[2])
	}
	text := Print(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, text)
	}
	if Print(m2) != text {
		t.Fatal("aggregate round-trip mismatch")
	}
}
