package ir

import (
	"fmt"
	"strconv"
)

// Parse reads a module in MIR textual syntax. The format round-trips with
// Print. Named structs must be defined before use; globals and functions may
// reference each other freely (initializers and call targets are resolved
// after the whole module has been read).
func Parse(src string) (*Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, m: NewModule("")}
	if err := p.parseModule(); err != nil {
		return nil, err
	}
	return p.m, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type parser struct {
	toks []token
	pos  int
	m    *Module

	// pending module-level symbol references, resolved at the end.
	globalInits []pendingInit
	callCounter int
}

type pendingInit struct {
	g    *Global
	agg  *ConstAggregate // when non-nil, resolve into agg.Elems[idx]
	idx  int
	name string
	line int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(glyph string) error {
	t := p.next()
	if t.kind != tPunct || t.text != glyph {
		return p.errf(t, "expected %q, found %s", glyph, t)
	}
	return nil
}

func (p *parser) acceptPunct(glyph string) bool {
	if p.peek().kind == tPunct && p.peek().text == glyph {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptIdent(word string) bool {
	if p.peek().kind == tIdent && p.peek().text == word {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseModule() error {
	for {
		t := p.peek()
		switch {
		case t.kind == tEOF:
			return p.resolveModuleRefs()
		case t.kind == tIdent && t.text == "module":
			p.next()
			s := p.next()
			if s.kind != tString {
				return p.errf(s, "module name must be a string")
			}
			p.m.Name = s.text
		case t.kind == tIdent && t.text == "struct":
			if err := p.parseStructDef(); err != nil {
				return err
			}
		case t.kind == tIdent && t.text == "global":
			if err := p.parseGlobal(Exported); err != nil {
				return err
			}
		case t.kind == tIdent && t.text == "declare":
			p.next()
			switch {
			case p.acceptIdent("global"):
				if err := p.parseGlobal(Declared); err != nil {
					return err
				}
			case p.acceptIdent("func"):
				if err := p.parseFuncDecl(); err != nil {
					return err
				}
			default:
				return p.errf(p.peek(), "declare must be followed by global or func")
			}
		case t.kind == tIdent && t.text == "func":
			if err := p.parseFuncDef(); err != nil {
				return err
			}
		default:
			return p.errf(t, "unexpected %s at module level", t)
		}
	}
}

func (p *parser) resolveModuleRefs() error {
	for _, pi := range p.globalInits {
		var v Value
		if g := p.m.Global(pi.name); g != nil {
			v = g
		} else if f := p.m.Func(pi.name); f != nil {
			v = f
		} else {
			return fmt.Errorf("line %d: initializer references unknown symbol @%s", pi.line, pi.name)
		}
		if pi.agg != nil {
			pi.agg.Elems[pi.idx] = v
		} else {
			pi.g.Init = v
		}
	}
	return nil
}

func (p *parser) parseStructDef() error {
	p.next() // struct
	name := p.next()
	if name.kind != tLocal {
		return p.errf(name, "struct name must be %%name")
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	s := &StructType{Name: name.text}
	for !p.acceptPunct("}") {
		if len(s.Fields) > 0 {
			if err := p.expectPunct(","); err != nil {
				return err
			}
		}
		ft, err := p.parseType()
		if err != nil {
			return err
		}
		s.Fields = append(s.Fields, ft)
	}
	return p.m.AddStruct(s)
}

func (p *parser) parseGlobal(defLinkage Linkage) error {
	if p.peek().kind == tIdent && p.peek().text == "global" {
		p.next()
	}
	name := p.next()
	if name.kind != tGlobalID {
		return p.errf(name, "global name must be @name")
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	elem, err := p.parseType()
	if err != nil {
		return err
	}
	g := &Global{GName: name.text, Elem: elem, Linkage: defLinkage}
	if defLinkage != Declared {
		if p.acceptPunct("=") {
			t := p.peek()
			switch {
			case t.kind == tGlobalID:
				p.next()
				p.globalInits = append(p.globalInits, pendingInit{g: g, name: t.text, line: t.line})
			case t.kind == tPunct && t.text == "{":
				agg, err := p.parseAggregateInit(elem)
				if err != nil {
					return err
				}
				g.Init = agg
			default:
				v, err := p.parseConst()
				if err != nil {
					return err
				}
				g.Init = v
			}
		}
		switch {
		case p.acceptIdent("internal"):
			g.Linkage = Internal
		case p.acceptIdent("export"):
			g.Linkage = Exported
		default:
			return p.errf(p.peek(), "global @%s needs a linkage (internal or export)", g.GName)
		}
	}
	return p.m.AddGlobal(g)
}

// parseAggregateInit parses "{ elem, elem, ... }" where elements are
// constants, symbol references, or nested aggregates.
func (p *parser) parseAggregateInit(t Type) (*ConstAggregate, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	agg := &ConstAggregate{T: t}
	for !p.acceptPunct("}") {
		if len(agg.Elems) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		et := p.peek()
		switch {
		case et.kind == tGlobalID:
			p.next()
			agg.Elems = append(agg.Elems, nil)
			p.globalInits = append(p.globalInits, pendingInit{
				agg: agg, idx: len(agg.Elems) - 1, name: et.text, line: et.line,
			})
		case et.kind == tPunct && et.text == "{":
			inner, err := p.parseAggregateInit(nil)
			if err != nil {
				return nil, err
			}
			agg.Elems = append(agg.Elems, inner)
		default:
			v, err := p.parseConst()
			if err != nil {
				return nil, err
			}
			agg.Elems = append(agg.Elems, v)
		}
	}
	return agg, nil
}

// parseType parses a MIR type.
func (p *parser) parseType() (Type, error) {
	t := p.next()
	switch t.kind {
	case tIdent:
		switch t.text {
		case "void":
			return Void, nil
		case "ptr":
			return Ptr, nil
		}
		if len(t.text) >= 2 && (t.text[0] == 'i' || t.text[0] == 'f') {
			if bits, err := strconv.Atoi(t.text[1:]); err == nil && bits > 0 && bits <= 128 {
				if t.text[0] == 'i' {
					return IntType{bits}, nil
				}
				return FloatType{bits}, nil
			}
		}
		return nil, p.errf(t, "unknown type %q", t.text)
	case tLocal:
		s := p.m.Struct(t.text)
		if s == nil {
			return nil, p.errf(t, "unknown struct type %%%s", t.text)
		}
		return s, nil
	case tPunct:
		switch t.text {
		case "[":
			n := p.next()
			if n.kind != tInt {
				return nil, p.errf(n, "array length must be an integer")
			}
			ln, _ := strconv.Atoi(n.text)
			x := p.next()
			if x.kind != tIdent || x.text != "x" {
				return nil, p.errf(x, "expected 'x' in array type")
			}
			elem, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &ArrayType{Elem: elem, Len: ln}, nil
		case "{":
			s := &StructType{}
			for !p.acceptPunct("}") {
				if len(s.Fields) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				ft, err := p.parseType()
				if err != nil {
					return nil, err
				}
				s.Fields = append(s.Fields, ft)
			}
			return s, nil
		}
	}
	return nil, p.errf(t, "expected a type, found %s", t)
}

// parseConst parses a self-contained constant operand (no symbol refs).
func (p *parser) parseConst() (Value, error) {
	t := p.next()
	switch t.kind {
	case tInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "bad integer %q", t.text)
		}
		ty := I64
		if p.acceptPunct(":") {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			it, ok := pt.(IntType)
			if !ok {
				return nil, p.errf(t, "integer constant with non-integer type %s", pt)
			}
			ty = it
		}
		return &ConstInt{Val: v, T: ty}, nil
	case tFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t, "bad float %q", t.text)
		}
		ty := F64
		if p.acceptPunct(":") {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			ft, ok := pt.(FloatType)
			if !ok {
				return nil, p.errf(t, "float constant with non-float type %s", pt)
			}
			ty = ft
		}
		return &ConstFloat{Val: v, T: ty}, nil
	case tIdent:
		switch t.text {
		case "null":
			return &ConstNull{}, nil
		case "undef":
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			return &ConstUndef{T: ty}, nil
		case "zero":
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			return &ConstZero{T: ty}, nil
		}
	}
	return nil, p.errf(t, "expected a constant, found %s", t)
}

func (p *parser) parseSig(withNames bool) (*FuncType, []string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, nil, err
	}
	sig := &FuncType{Ret: Void}
	var names []string
	for !p.acceptPunct(")") {
		if len(sig.Params) > 0 || sig.Variadic {
			if err := p.expectPunct(","); err != nil {
				return nil, nil, err
			}
		}
		if p.acceptIdent("...") {
			sig.Variadic = true
			continue
		}
		if sig.Variadic {
			return nil, nil, p.errf(p.peek(), "parameters after '...'")
		}
		if withNames {
			n := p.next()
			if n.kind != tLocal {
				return nil, nil, p.errf(n, "parameter name must be %%name")
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, nil, err
			}
			names = append(names, n.text)
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, nil, err
		}
		sig.Params = append(sig.Params, pt)
	}
	if p.acceptPunct("->") {
		rt, err := p.parseType()
		if err != nil {
			return nil, nil, err
		}
		sig.Ret = rt
	}
	return sig, names, nil
}

func (p *parser) parseFuncDecl() error {
	name := p.next()
	if name.kind != tGlobalID {
		return p.errf(name, "function name must be @name")
	}
	sig, _, err := p.parseSig(false)
	if err != nil {
		return err
	}
	f := &Function{FName: name.text, Sig: sig, Linkage: Declared}
	for i, pt := range sig.Params {
		f.Params = append(f.Params, &Param{PName: fmt.Sprintf("p%d", i), T: pt, Index: i, Parent: f})
	}
	return p.m.AddFunc(f)
}

func (p *parser) parseFuncDef() error {
	p.next() // func
	name := p.next()
	if name.kind != tGlobalID {
		return p.errf(name, "function name must be @name")
	}
	sig, pnames, err := p.parseSig(true)
	if err != nil {
		return err
	}
	f := &Function{FName: name.text, Sig: sig, Linkage: Exported}
	for i, pt := range sig.Params {
		f.Params = append(f.Params, &Param{PName: pnames[i], T: pt, Index: i, Parent: f})
	}
	switch {
	case p.acceptIdent("internal"):
		f.Linkage = Internal
	case p.acceptIdent("export"):
		f.Linkage = Exported
	default:
		return p.errf(p.peek(), "func @%s needs a linkage (internal or export)", f.FName)
	}
	if err := p.m.AddFunc(f); err != nil {
		return err
	}
	return p.parseFuncBody(f)
}

// operandRef is an unresolved instruction operand.
type operandRef struct {
	val   Value  // resolved constant (non-nil) …
	local string // … or a %local reference …
	gname string // … or an @global reference
	line  int
}

func (p *parser) parseOperandRef() (operandRef, error) {
	t := p.peek()
	switch t.kind {
	case tLocal:
		p.next()
		return operandRef{local: t.text, line: t.line}, nil
	case tGlobalID:
		p.next()
		return operandRef{gname: t.text, line: t.line}, nil
	default:
		v, err := p.parseConst()
		if err != nil {
			return operandRef{}, err
		}
		return operandRef{val: v, line: t.line}, nil
	}
}

type instrStub struct {
	in        *Instr
	operands  []operandRef
	blockRefs []string
	line      int
}

func (p *parser) parseFuncBody(f *Function) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	var stubs []*instrStub
	blocks := map[string]*Block{}
	var cur *Block
	for !p.acceptPunct("}") {
		t := p.peek()
		if t.kind == tEOF {
			return p.errf(t, "unexpected end of input in func @%s", f.FName)
		}
		// Block label: ident ':'
		if t.kind == tIdent && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == ":" &&
			!isInstrStart(t.text) {
			p.pos += 2
			if blocks[t.text] != nil {
				return p.errf(t, "duplicate block %s", t.text)
			}
			cur = &Block{BName: t.text, Parent: f}
			blocks[t.text] = cur
			f.Blocks = append(f.Blocks, cur)
			continue
		}
		if cur == nil {
			return p.errf(t, "instruction before first block label")
		}
		stub, err := p.parseInstr()
		if err != nil {
			return err
		}
		stub.in.Parent = cur
		cur.Instrs = append(cur.Instrs, stub.in)
		stubs = append(stubs, stub)
	}
	return p.resolveFuncRefs(f, blocks, stubs)
}

// isInstrStart reports whether word begins an instruction (as opposed to a
// block label). Labels that collide with instruction keywords are rejected.
func isInstrStart(word string) bool {
	switch word {
	case "alloca", "load", "store", "gep", "memcpy", "bitcast", "ptrtoint",
		"inttoptr", "phi", "select", "call", "ret", "br", "condbr",
		"unreachable", "icmp":
		return true
	}
	return IsBinKind(word)
}

func (p *parser) resolveFuncRefs(f *Function, blocks map[string]*Block, stubs []*instrStub) error {
	locals := map[string]Value{}
	for _, prm := range f.Params {
		locals[prm.PName] = prm
	}
	for _, s := range stubs {
		if s.in.Op.HasResult() {
			if _, dup := locals[s.in.IName]; dup {
				return fmt.Errorf("line %d: duplicate definition of %%%s", s.line, s.in.IName)
			}
			locals[s.in.IName] = s.in
		}
	}
	for _, s := range stubs {
		for _, ref := range s.operands {
			v, err := p.resolveOperand(ref, locals)
			if err != nil {
				return err
			}
			s.in.Args = append(s.in.Args, v)
		}
		for _, bn := range s.blockRefs {
			blk := blocks[bn]
			if blk == nil {
				return fmt.Errorf("line %d: unknown block %s", s.line, bn)
			}
			s.in.Blocks = append(s.in.Blocks, blk)
		}
		if s.in.Op == OpSelect && s.in.T == nil {
			s.in.T = s.in.Args[1].Type()
		}
	}
	return nil
}

func (p *parser) resolveOperand(ref operandRef, locals map[string]Value) (Value, error) {
	switch {
	case ref.val != nil:
		return ref.val, nil
	case ref.local != "":
		v := locals[ref.local]
		if v == nil {
			return nil, fmt.Errorf("line %d: unknown local %%%s", ref.line, ref.local)
		}
		return v, nil
	default:
		if g := p.m.Global(ref.gname); g != nil {
			return g, nil
		}
		if fn := p.m.Func(ref.gname); fn != nil {
			return fn, nil
		}
		return nil, fmt.Errorf("line %d: unknown symbol @%s", ref.line, ref.gname)
	}
}

// parseInstr parses one instruction into a stub with unresolved operands.
func (p *parser) parseInstr() (*instrStub, error) {
	t := p.peek()
	stub := &instrStub{in: &Instr{T: Void}, line: t.line}
	// Optional "%name =" result.
	if t.kind == tLocal {
		p.next()
		stub.in.IName = t.text
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		t = p.peek()
	}
	if t.kind != tIdent {
		return nil, p.errf(t, "expected an instruction, found %s", t)
	}
	op := p.next().text
	operand := func() error {
		ref, err := p.parseOperandRef()
		if err != nil {
			return err
		}
		stub.operands = append(stub.operands, ref)
		return nil
	}
	comma := func() error { return p.expectPunct(",") }
	blockRef := func() error {
		bt := p.next()
		if bt.kind != tIdent {
			return p.errf(bt, "expected a block name, found %s", bt)
		}
		stub.blockRefs = append(stub.blockRefs, bt.text)
		return nil
	}

	switch {
	case op == "alloca":
		stub.in.Op = OpAlloca
		stub.in.T = Ptr
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		stub.in.Ty = ty
	case op == "load":
		stub.in.Op = OpLoad
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		stub.in.T, stub.in.Ty = ty, ty
		if err := comma(); err != nil {
			return nil, err
		}
		if err := operand(); err != nil {
			return nil, err
		}
	case op == "store":
		stub.in.Op = OpStore
		if err := operand(); err != nil {
			return nil, err
		}
		if err := comma(); err != nil {
			return nil, err
		}
		if err := operand(); err != nil {
			return nil, err
		}
	case op == "gep":
		stub.in.Op = OpGEP
		stub.in.T = Ptr
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		stub.in.Ty = ty
		if err := comma(); err != nil {
			return nil, err
		}
		if err := operand(); err != nil {
			return nil, err
		}
		for p.acceptPunct(",") {
			if err := operand(); err != nil {
				return nil, err
			}
		}
	case op == "memcpy":
		stub.in.Op = OpMemcpy
		for i := 0; i < 3; i++ {
			if i > 0 {
				if err := comma(); err != nil {
					return nil, err
				}
			}
			if err := operand(); err != nil {
				return nil, err
			}
		}
	case op == "bitcast":
		stub.in.Op = OpBitcast
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		stub.in.T, stub.in.Ty = ty, ty
		if err := comma(); err != nil {
			return nil, err
		}
		if err := operand(); err != nil {
			return nil, err
		}
	case op == "ptrtoint":
		stub.in.Op = OpPtrToInt
		stub.in.T = I64
		if err := operand(); err != nil {
			return nil, err
		}
	case op == "inttoptr":
		stub.in.Op = OpIntToPtr
		stub.in.T = Ptr
		if err := operand(); err != nil {
			return nil, err
		}
	case op == "phi":
		stub.in.Op = OpPhi
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		stub.in.T = ty
		for p.acceptPunct(",") {
			if err := p.expectPunct("["); err != nil {
				return nil, err
			}
			if err := operand(); err != nil {
				return nil, err
			}
			if err := comma(); err != nil {
				return nil, err
			}
			if err := blockRef(); err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
		}
		if len(stub.operands) == 0 {
			return nil, p.errf(t, "phi needs at least one incoming value")
		}
	case op == "select":
		stub.in.Op = OpSelect
		for i := 0; i < 3; i++ {
			if i > 0 {
				if err := comma(); err != nil {
					return nil, err
				}
			}
			if err := operand(); err != nil {
				return nil, err
			}
		}
		// The result type is fixed after resolution; recorded lazily as
		// the type of the second operand in resolveTypes below. Select of
		// locals cannot know its type here, so leave T nil and let the
		// resolver patch it.
		stub.in.T = nil
	case op == "call":
		stub.in.Op = OpCall
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		stub.in.T = ty
		if err := comma(); err != nil {
			return nil, err
		}
		if err := operand(); err != nil { // callee
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for !p.acceptPunct(")") {
			if len(stub.operands) > 1 {
				if err := comma(); err != nil {
					return nil, err
				}
			}
			if err := operand(); err != nil {
				return nil, err
			}
		}
	case op == "ret":
		stub.in.Op = OpRet
		// Optional value: anything that can start an operand.
		nt := p.peek()
		if nt.kind == tLocal || nt.kind == tGlobalID || nt.kind == tInt || nt.kind == tFloat ||
			nt.kind == tIdent && (nt.text == "null" || nt.text == "undef" || nt.text == "zero") {
			if err := operand(); err != nil {
				return nil, err
			}
		}
	case op == "br":
		stub.in.Op = OpBr
		if err := blockRef(); err != nil {
			return nil, err
		}
	case op == "condbr":
		stub.in.Op = OpCondBr
		if err := operand(); err != nil {
			return nil, err
		}
		if err := comma(); err != nil {
			return nil, err
		}
		if err := blockRef(); err != nil {
			return nil, err
		}
		if err := comma(); err != nil {
			return nil, err
		}
		if err := blockRef(); err != nil {
			return nil, err
		}
	case op == "unreachable":
		stub.in.Op = OpUnreachable
	case op == "icmp":
		stub.in.Op = OpICmp
		stub.in.T = I1
		pred := p.next()
		if pred.kind != tIdent || !IsICmpPred(pred.text) {
			return nil, p.errf(pred, "expected an icmp predicate, found %s", pred)
		}
		stub.in.Sub = pred.text
		if err := comma(); err != nil {
			return nil, err
		}
		if err := operand(); err != nil {
			return nil, err
		}
		if err := comma(); err != nil {
			return nil, err
		}
		if err := operand(); err != nil {
			return nil, err
		}
	case IsBinKind(op):
		stub.in.Op = OpBin
		stub.in.Sub = op
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		stub.in.T = ty
		if err := comma(); err != nil {
			return nil, err
		}
		if err := operand(); err != nil {
			return nil, err
		}
		if err := comma(); err != nil {
			return nil, err
		}
		if err := operand(); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf(t, "unknown instruction %q", op)
	}
	if stub.in.Op.HasResult() && stub.in.IName == "" {
		if stub.in.Op == OpCall && TypesEqual(stub.in.T, Void) {
			// Statement-form void call: synthesize a result name so the
			// instruction model stays uniform.
			p.callCounter++
			stub.in.IName = fmt.Sprintf("call.%d", p.callCounter)
		} else {
			return nil, p.errf(t, "%s requires a result name", op)
		}
	}
	if !stub.in.Op.HasResult() && stub.in.IName != "" {
		return nil, p.errf(t, "%s does not produce a result", op)
	}
	return stub, nil
}
