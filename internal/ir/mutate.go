package ir

// Mutation helpers for transformation passes.

// ReplaceUses rewrites every operand in f that references old to new.
func ReplaceUses(f *Function, old, new Value) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
					n++
				}
			}
		}
	}
	return n
}

// RemoveInstr deletes in from its block and reports whether it was found.
// The caller must ensure the instruction has no remaining uses.
func RemoveInstr(in *Instr) bool {
	b := in.Parent
	if b == nil {
		return false
	}
	for i, cur := range b.Instrs {
		if cur == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			in.Parent = nil
			return true
		}
	}
	return false
}

// HasUses reports whether any instruction in f uses v as an operand.
func HasUses(f *Function, v Value) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == v {
					return true
				}
			}
		}
	}
	return false
}
