package ir

import "testing"

// FuzzParse checks that the MIR parser never panics and that anything it
// accepts verifies, prints, and round-trips.
func FuzzParse(f *testing.F) {
	seeds := []string{
		figure1,
		`module "x"`,
		"global @g : i32 = 7:i32 export",
		"declare func @f(ptr, ...) -> ptr",
		"struct %S = { i32, ptr }\nglobal @s : %S internal",
		"func @f(%p: ptr) export {\nentry:\n  %v = load ptr, %p\n  ret %v\n}",
		"func @f() export {\nentry:\n  condbr 1:i1, a, b\na:\n  br b\nb:\n  ret\n}",
		"global @a : [3 x { ptr, i8 }] internal",
		"func @f() export {\nentry:\n  %c = call void, @f()\n  ret\n}",
		"; comment only",
		"module \"é\"",
		"global @a : i32 = 0:i32 internal\nglobal @t : [2 x ptr] = { @a, null } internal",
		"global @n : [2 x [2 x i64]] = { { 1:i64 }, { } } internal",
		"func @f() export {\nentry:\n  %x = phi ptr, [null, entry]\n  ret\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input must print and reparse to the same text.
		text := Print(m)
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed module does not reparse: %v\n%s", err, text)
		}
		if Print(m2) != text {
			t.Fatalf("round-trip not a fixed point:\n%s\nvs\n%s", text, Print(m2))
		}
	})
}
