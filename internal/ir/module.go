package ir

import "fmt"

// Module is a single translation unit: the "current module" of the paper's
// incomplete-program model. Everything outside it is an external module.
type Module struct {
	Name    string
	Structs []*StructType // named struct types, in declaration order
	Globals []*Global
	Funcs   []*Function

	structsByName map[string]*StructType
	globalsByName map[string]*Global
	funcsByName   map[string]*Function
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:          name,
		structsByName: map[string]*StructType{},
		globalsByName: map[string]*Global{},
		funcsByName:   map[string]*Function{},
	}
}

// Struct returns the named struct type, or nil.
func (m *Module) Struct(name string) *StructType { return m.structsByName[name] }

// Global returns the named global, or nil.
func (m *Module) Global(name string) *Global { return m.globalsByName[name] }

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Function { return m.funcsByName[name] }

// AddStruct registers a named struct type.
func (m *Module) AddStruct(s *StructType) error {
	if s.Name == "" {
		return fmt.Errorf("cannot register anonymous struct")
	}
	if _, dup := m.structsByName[s.Name]; dup {
		return fmt.Errorf("duplicate struct %%%s", s.Name)
	}
	m.Structs = append(m.Structs, s)
	m.structsByName[s.Name] = s
	return nil
}

// AddGlobal registers a global variable.
func (m *Module) AddGlobal(g *Global) error {
	if _, dup := m.globalsByName[g.GName]; dup {
		return fmt.Errorf("duplicate global @%s", g.GName)
	}
	if _, dup := m.funcsByName[g.GName]; dup {
		return fmt.Errorf("global @%s collides with function", g.GName)
	}
	m.Globals = append(m.Globals, g)
	m.globalsByName[g.GName] = g
	return nil
}

// AddFunc registers a function definition or declaration.
func (m *Module) AddFunc(f *Function) error {
	if _, dup := m.funcsByName[f.FName]; dup {
		return fmt.Errorf("duplicate function @%s", f.FName)
	}
	if _, dup := m.globalsByName[f.FName]; dup {
		return fmt.Errorf("function @%s collides with global", f.FName)
	}
	m.Funcs = append(m.Funcs, f)
	m.funcsByName[f.FName] = f
	return nil
}

// NumInstrs returns the total instruction count across all functions, the
// size metric of the paper's Table III.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// ForEachInstr calls fn for every instruction in the module.
func (m *Module) ForEachInstr(fn func(*Function, *Block, *Instr)) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				fn(f, b, in)
			}
		}
	}
}
