package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates MIR token kinds.
type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tLocal    // %name
	tGlobalID // @name
	tInt
	tFloat
	tString
	tPunct // single punctuation or "->"
)

type token struct {
	kind tokKind
	text string // for idents/locals/globals: without sigil; for punct: the glyph(s)
	line int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tLocal:
		return "%" + t.text
	case tGlobalID:
		return "@" + t.text
	case tString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func isIdentStart(r byte) bool {
	return r == '_' || r == '.' || unicode.IsLetter(rune(r))
}

func isIdentPart(r byte) bool {
	return r == '_' || r == '.' || unicode.IsLetter(rune(r)) || unicode.IsDigit(rune(r))
}

// lex tokenizes src into tokens, returning an error with line information on
// an invalid byte.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == ';':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '%' || c == '@':
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == start {
				return nil, fmt.Errorf("line %d: dangling %q", l.line, string(c))
			}
			kind := tLocal
			if c == '@' {
				kind = tGlobalID
			}
			l.toks = append(l.toks, token{kind, l.src[start:l.pos], l.line})
		case c == '"':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '"' && l.src[l.pos] != '\n' {
				if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
					l.pos++
				}
				l.pos++
			}
			if l.pos >= len(l.src) || l.src[l.pos] != '"' {
				return nil, fmt.Errorf("line %d: unterminated string", l.line)
			}
			l.pos++
			text, err := strconv.Unquote(l.src[start:l.pos])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad string literal: %v", l.line, err)
			}
			l.toks = append(l.toks, token{tString, text, l.line})
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
			l.toks = append(l.toks, token{tPunct, "->", l.line})
			l.pos += 2
		case c == '-' || c >= '0' && c <= '9':
			start := l.pos
			if c == '-' {
				l.pos++
			}
			isFloat := false
			for l.pos < len(l.src) {
				d := l.src[l.pos]
				if d >= '0' && d <= '9' {
					l.pos++
				} else if d == '.' && !isFloat && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
					isFloat = true
					l.pos++
				} else if (d == 'e' || d == 'E') && l.pos+1 < len(l.src) &&
					(l.src[l.pos+1] == '-' || l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9') {
					isFloat = true
					l.pos += 2
				} else {
					break
				}
			}
			text := l.src[start:l.pos]
			if text == "-" {
				return nil, fmt.Errorf("line %d: dangling '-'", l.line)
			}
			kind := tInt
			if isFloat {
				kind = tFloat
			}
			l.toks = append(l.toks, token{kind, text, l.line})
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tIdent, l.src[start:l.pos], l.line})
		case strings.ContainsRune("(){}[],:=x", rune(c)):
			// 'x' appears only inside array types "[4 x i32]" and is
			// lexed as an ident above; remaining single glyphs:
			l.toks = append(l.toks, token{tPunct, string(c), l.line})
			l.pos++
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", l.line, string(c))
		}
	}
	l.toks = append(l.toks, token{tEOF, "", l.line})
	return l.toks, nil
}
