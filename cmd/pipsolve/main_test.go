package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runSelf builds and runs the command with the given arguments.
func runSelf(t *testing.T, args ...string) (string, error) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pipsolve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestSolveInlineC(t *testing.T) {
	out, err := runSelf(t, "-c", "static int x; int *p = &x; extern void take(int**); void f() { take(&p); }")
	if err != nil {
		t.Fatalf("pipsolve failed: %v\n%s", err, out)
	}
	for _, frag := range []string{"points-to sets:", "@p -> @x", "externally accessible", "solver:"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestSolveIRFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mir")
	src := "module \"m\"\nglobal @g : ptr = null export\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runSelf(t, path)
	if err != nil {
		t.Fatalf("pipsolve failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "@g") {
		t.Fatalf("output missing @g:\n%s", out)
	}
}

func TestSolveDOT(t *testing.T) {
	out, err := runSelf(t, "-dot", "-c", "int *p; static int x; void f() { p = &x; }")
	if err != nil {
		t.Fatalf("pipsolve -dot failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "digraph constraints") {
		t.Fatalf("not DOT output:\n%s", out)
	}
}

func TestSolveConfigFlag(t *testing.T) {
	out, err := runSelf(t, "-config", "EP+Naive", "-c", "int x;")
	if err != nil {
		t.Fatalf("pipsolve failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "EP+Naive") {
		t.Fatalf("configuration not echoed:\n%s", out)
	}
	if _, err := runSelf(t, "-config", "BOGUS", "-c", "int x;"); err == nil {
		t.Fatal("bogus configuration accepted")
	}
}

func TestSolveBadSource(t *testing.T) {
	out, err := runSelf(t, "-c", "int f( {")
	if err == nil {
		t.Fatalf("bad source accepted:\n%s", out)
	}
}
