// Command pipsolve runs the sound points-to analysis on a single mini-C or
// MIR file and reports points-to sets, escape information, and solver
// statistics.
//
// Usage:
//
//	pipsolve [-config CFG] [-ir] [-dump-ir] file
//	pipsolve -c 'int *p; ...'           (inline source)
//	pipsolve -demand p,f.q file         (demand-driven: solve only the queried slice)
//	pipsolve -incremental old.c new.c   (re-solve new.c from old.c's checkpoint)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pip-analysis/pip"
)

func main() {
	configName := flag.String("config", pip.DefaultConfig().String(),
		"solver configuration, e.g. IP+WL(FIFO)+PIP or EP+OVS+WL(LRF)+OCD")
	isIR := flag.Bool("ir", false, "input is MIR textual IR instead of mini-C")
	inline := flag.String("c", "", "inline source instead of a file")
	dumpIR := flag.Bool("dump-ir", false, "print the lowered MIR before the solution")
	dot := flag.Bool("dot", false, "print the solved constraint graph in Graphviz format and exit")
	callGraph := flag.Bool("callgraph", false, "print the call graph in Graphviz format and exit")
	modRef := flag.Bool("modref", false, "print per-function mod/ref summaries and exit")
	budgetStr := flag.String("budget", "", "solve budget, e.g. 100ms, 5000f, or 100ms,5000f; exhausting it yields the sound Ω-degraded solution")
	demandRoots := flag.String("demand", "", "comma-separated pointer names (e.g. p,f.q): solve only the constraint slice reachable from them; everything else answers Ω")
	incrBase := flag.String("incremental", "", "path to a baseline version of the input: the baseline is solved first and the input re-solves incrementally from its checkpoint")
	solveWorkers := flag.Int("solve-workers", 0, "intra-solve worker count for stratified parallel presaturation (0 = sequential solver)")
	showStats := flag.Bool("stats", false, "print solver telemetry (phase timers, rule firings, worklist peak)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the solve (open in Perfetto or chrome://tracing)")
	chaosSpec := flag.String("chaos", "", "arm deterministic fault injection from a spec, e.g. seed=42;engine.dispatch=error:0.01 (see the fault model section of DESIGN.md)")
	flag.Parse()

	if *chaosSpec != "" {
		if _, err := pip.ArmChaos(*chaosSpec); err != nil {
			fatal(err)
		}
	}

	cfg, err := pip.ParseConfig(*configName)
	if err != nil {
		fatal(err)
	}
	if *budgetStr != "" {
		b, err := pip.ParseBudget(*budgetStr)
		if err != nil {
			fatal(err)
		}
		cfg.Budget = b
	}
	cfg.SolveWorkers = *solveWorkers

	name := "<inline>"
	src := *inline
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: pipsolve [flags] file")
			flag.PrintDefaults()
			os.Exit(2)
		}
		name = flag.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		src = string(data)
		if strings.HasSuffix(name, ".mir") || strings.HasSuffix(name, ".ir") {
			*isIR = true
		}
	}

	var tr *pip.Trace
	var lane pip.TraceLane
	if *tracePath != "" {
		tr = pip.NewTrace("pipsolve", 0)
		lane = tr.NewTrack("solve")
	}

	var m *pip.Module
	if *isIR {
		m, err = pip.ParseIR(src)
	} else {
		m, err = pip.CompileC(name, src)
	}
	if err != nil {
		fatal(err)
	}
	var res *pip.Result
	switch {
	case *demandRoots != "":
		roots := splitNames(*demandRoots)
		eng := pip.NewEngine(pip.BatchOptions{Workers: 1})
		br, err := eng.AnalyzeDemand(m, cfg, nil, roots)
		if err != nil {
			fatal(err)
		}
		res = br.Result
		d := br.Demand
		fmt.Printf("demand-driven (roots: %s): explored %d/%d variables, %d/%d constraints\n\n",
			strings.Join(roots, ", "), d.ExploredVars, d.TotalVars,
			d.ExploredConstraints, d.TotalConstraints)
	case *incrBase != "":
		res = solveIncremental(m, cfg, *incrBase, *isIR)
	default:
		res, err = pip.AnalyzeTraced(m, cfg, lane)
		if err != nil {
			fatal(err)
		}
	}
	if tr != nil {
		if err := tr.WriteChromeFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pipsolve: wrote trace (%d records) to %s\n", tr.Len(), *tracePath)
	}

	if *dot {
		fmt.Print(res.ConstraintGraphDOT())
		return
	}
	if *callGraph {
		fmt.Print(res.CallGraph().DOT())
		return
	}
	if *modRef {
		fmt.Print(res.ModRef(res.CallGraph()).Report())
		return
	}
	if *dumpIR {
		fmt.Println(pip.PrintIR(res.Module))
	}
	fmt.Printf("configuration: %s\n\n", cfg)
	if res.Degraded() {
		fmt.Println("NOTE: the solve exhausted its budget; this is the sound Ω-degraded solution, not the exact fixed point.")
		fmt.Println()
	}
	fmt.Println("points-to sets:")
	fmt.Print(res.Dump())
	ext := res.ExternallyAccessible()
	fmt.Printf("\nexternally accessible objects (%d):\n", len(ext))
	for _, e := range ext {
		fmt.Printf("  %s\n", e)
	}
	st := res.Stats()
	fmt.Printf("\nsolver: %v, %d explicit pointees, %d visits, %d unifications, %d simple edges\n",
		st.Duration, st.ExplicitPointees, st.Visits, st.Unifications, st.SimpleEdges)
	if *showStats {
		fmt.Printf("telemetry: %v\n", res.Telemetry())
	}
}

// solveIncremental analyzes the baseline file, then re-solves the main
// module through the same incremental session, reporting which path the
// update took (reuse, resume from checkpoint, or from-scratch fallback).
func solveIncremental(m *pip.Module, cfg pip.Config, basePath string, isIR bool) *pip.Result {
	data, err := os.ReadFile(basePath)
	if err != nil {
		fatal(err)
	}
	src := string(data)
	var bm *pip.Module
	if isIR || strings.HasSuffix(basePath, ".mir") || strings.HasSuffix(basePath, ".ir") {
		bm, err = pip.ParseIR(src)
	} else {
		bm, err = pip.CompileC(basePath, src)
	}
	if err != nil {
		fatal(err)
	}
	eng := pip.NewEngine(pip.BatchOptions{Workers: 1})
	sess := eng.NewSession(cfg)
	if r0 := sess.Analyze(bm); r0.Err != nil {
		fatal(r0.Err)
	}
	r1 := sess.Analyze(m)
	if r1.Err != nil {
		fatal(r1.Err)
	}
	inc := r1.Incremental
	path := "fell back to a from-scratch solve"
	switch {
	case inc.ReusedSolution:
		path = "reused the baseline solution (empty constraint delta)"
	case inc.Resumed:
		path = "resumed from the baseline checkpoint"
	}
	fmt.Printf("incremental vs %s: %s\n", basePath, path)
	fmt.Printf("  +%d / -%d constraints, %d of %d reused\n",
		inc.Added, inc.Removed, inc.Reused, inc.FullConstraints)
	if inc.FallbackReason != "" {
		fmt.Printf("  fallback reason: %s\n", inc.FallbackReason)
	}
	fmt.Println()
	return r1.Result
}

// splitNames splits a comma-separated flag value, trimming blanks.
func splitNames(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipsolve:", err)
	os.Exit(1)
}
