// Command pipsolve runs the sound points-to analysis on a single mini-C or
// MIR file and reports points-to sets, escape information, and solver
// statistics.
//
// Usage:
//
//	pipsolve [-config CFG] [-ir] [-dump-ir] file
//	pipsolve -c 'int *p; ...'           (inline source)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pip-analysis/pip"
)

func main() {
	configName := flag.String("config", pip.DefaultConfig().String(),
		"solver configuration, e.g. IP+WL(FIFO)+PIP or EP+OVS+WL(LRF)+OCD")
	isIR := flag.Bool("ir", false, "input is MIR textual IR instead of mini-C")
	inline := flag.String("c", "", "inline source instead of a file")
	dumpIR := flag.Bool("dump-ir", false, "print the lowered MIR before the solution")
	dot := flag.Bool("dot", false, "print the solved constraint graph in Graphviz format and exit")
	callGraph := flag.Bool("callgraph", false, "print the call graph in Graphviz format and exit")
	modRef := flag.Bool("modref", false, "print per-function mod/ref summaries and exit")
	budgetStr := flag.String("budget", "", "solve budget, e.g. 100ms, 5000f, or 100ms,5000f; exhausting it yields the sound Ω-degraded solution")
	solveWorkers := flag.Int("solve-workers", 0, "intra-solve worker count for stratified parallel presaturation (0 = sequential solver)")
	showStats := flag.Bool("stats", false, "print solver telemetry (phase timers, rule firings, worklist peak)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the solve (open in Perfetto or chrome://tracing)")
	chaosSpec := flag.String("chaos", "", "arm deterministic fault injection from a spec, e.g. seed=42;engine.dispatch=error:0.01 (see the fault model section of DESIGN.md)")
	flag.Parse()

	if *chaosSpec != "" {
		if _, err := pip.ArmChaos(*chaosSpec); err != nil {
			fatal(err)
		}
	}

	cfg, err := pip.ParseConfig(*configName)
	if err != nil {
		fatal(err)
	}
	if *budgetStr != "" {
		b, err := pip.ParseBudget(*budgetStr)
		if err != nil {
			fatal(err)
		}
		cfg.Budget = b
	}
	cfg.SolveWorkers = *solveWorkers

	name := "<inline>"
	src := *inline
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: pipsolve [flags] file")
			flag.PrintDefaults()
			os.Exit(2)
		}
		name = flag.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		src = string(data)
		if strings.HasSuffix(name, ".mir") || strings.HasSuffix(name, ".ir") {
			*isIR = true
		}
	}

	var tr *pip.Trace
	var lane pip.TraceLane
	if *tracePath != "" {
		tr = pip.NewTrace("pipsolve", 0)
		lane = tr.NewTrack("solve")
	}

	var m *pip.Module
	if *isIR {
		m, err = pip.ParseIR(src)
	} else {
		m, err = pip.CompileC(name, src)
	}
	if err != nil {
		fatal(err)
	}
	res, err := pip.AnalyzeTraced(m, cfg, lane)
	if err != nil {
		fatal(err)
	}
	if tr != nil {
		if err := tr.WriteChromeFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pipsolve: wrote trace (%d records) to %s\n", tr.Len(), *tracePath)
	}

	if *dot {
		fmt.Print(res.ConstraintGraphDOT())
		return
	}
	if *callGraph {
		fmt.Print(res.CallGraph().DOT())
		return
	}
	if *modRef {
		fmt.Print(res.ModRef(res.CallGraph()).Report())
		return
	}
	if *dumpIR {
		fmt.Println(pip.PrintIR(res.Module))
	}
	fmt.Printf("configuration: %s\n\n", cfg)
	if res.Degraded() {
		fmt.Println("NOTE: the solve exhausted its budget; this is the sound Ω-degraded solution, not the exact fixed point.")
		fmt.Println()
	}
	fmt.Println("points-to sets:")
	fmt.Print(res.Dump())
	ext := res.ExternallyAccessible()
	fmt.Printf("\nexternally accessible objects (%d):\n", len(ext))
	for _, e := range ext {
		fmt.Printf("  %s\n", e)
	}
	st := res.Stats()
	fmt.Printf("\nsolver: %v, %d explicit pointees, %d visits, %d unifications, %d simple edges\n",
		st.Duration, st.ExplicitPointees, st.Visits, st.Unifications, st.SimpleEdges)
	if *showStats {
		fmt.Printf("telemetry: %v\n", res.Telemetry())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipsolve:", err)
	os.Exit(1)
}
