package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing run()'s output
// while it executes on another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSmokeMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-smoke", "-quiet"}, &out, &errOut); err != nil {
		t.Fatalf("run -smoke: %v\nstderr:\n%s", err, errOut.String())
	}
	for _, frag := range []string{"pipserve listening on", "smoke ok", "pipserve stopped"} {
		if !strings.Contains(out.String(), frag) {
			t.Fatalf("output missing %q:\n%s", frag, out.String())
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-config", "BOGUS"}, &out, &errOut); err == nil {
		t.Fatal("bad -config accepted")
	}
	if err := run([]string{"-budget", "10parsecs"}, &out, &errOut); err == nil {
		t.Fatal("bad -budget accepted")
	}
	if err := run([]string{"stray"}, &out, &errOut); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	if err := run([]string{"-backends", "http://x"}, &out, &errOut); err == nil {
		t.Fatal("-backends without -router accepted")
	}
	if err := run([]string{"-router", "-store", t.TempDir()}, &out, &errOut); err == nil {
		t.Fatal("-router with -store accepted")
	}
	if err := run([]string{"-router"}, &out, &errOut); err == nil {
		t.Fatal("-router without -backends accepted outside -smoke")
	}
	if err := run([]string{"-backends-file", "x"}, &out, &errOut); err == nil {
		t.Fatal("-backends-file without -router accepted")
	}
	if err := run([]string{"-router", "-backends", "http://x", "-backends-file", "y"}, &out, &errOut); err == nil {
		t.Fatal("-backends and -backends-file together accepted")
	}
	if err := run([]string{"-router", "-backends-file", "/nonexistent/backends"}, &out, &errOut); err == nil {
		t.Fatal("unreadable -backends-file accepted")
	}
}

// TestRouterSmokeMode: -router -smoke spins up an in-process backend and
// pushes one solve through the full forward path.
func TestRouterSmokeMode(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-router", "-smoke", "-quiet"}, &out, &errOut); err != nil {
		t.Fatalf("run -router -smoke: %v\nstderr:\n%s", err, errOut.String())
	}
	for _, frag := range []string{"router over 1 backends", "smoke ok", "pipserve stopped"} {
		if !strings.Contains(out.String(), frag) {
			t.Fatalf("output missing %q:\n%s", frag, out.String())
		}
	}
}

// TestStoreWarmRestart is the tentpole acceptance check at CLI level: a
// solve served by one process is answered by the next process over the
// same -store directory as a fingerprint-verified disk hit — cache_hit
// and disk_hit both true, zero re-solves.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	const src = `{"c": "static int x; int *p = &x;", "queries": ["p"]}`

	solve := func(base string) (cacheHit, diskHit bool) {
		t.Helper()
		resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			CacheHit bool `json:"cache_hit"`
			DiskHit  bool `json:"disk_hit"`
			Degraded bool `json:"degraded"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || out.Degraded {
			t.Fatalf("solve: status %d degraded=%v", resp.StatusCode, out.Degraded)
		}
		return out.CacheHit, out.DiskHit
	}
	stopServer := func(done chan error) {
		t.Helper()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned error after SIGTERM: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not exit after SIGTERM")
		}
	}

	var out1 syncBuffer
	base1, done1 := startServer(t, &out1, "-store", dir)
	if ch, dh := solve(base1); ch || dh {
		t.Fatalf("first-process solve was a hit (cache=%v disk=%v)", ch, dh)
	}
	stopServer(done1) // drain flushes the store

	var out2 syncBuffer
	base2, done2 := startServer(t, &out2, "-store", dir)
	if ch, dh := solve(base2); !ch || !dh {
		t.Fatalf("restarted process re-solved (cache=%v disk=%v), want a verified disk hit", ch, dh)
	}
	stopServer(done2)
	if !strings.Contains(out2.String(), "persistent store at "+dir) {
		t.Fatalf("restart output missing store banner:\n%s", out2.String())
	}
}

var listenRE = regexp.MustCompile(`pipserve listening on (\S+)`)

// startServer runs the daemon on an ephemeral port and returns its base
// URL plus the channel run()'s error will arrive on.
func startServer(t *testing.T, out *syncBuffer, extra ...string) (string, chan error) {
	t.Helper()
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, extra...)
	go func() { done <- run(args, out, os.Stderr) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], done
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never started:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSIGTERMDrain: the daemon serves requests, then exits cleanly on
// SIGTERM, draining before it returns.
func TestSIGTERMDrain(t *testing.T) {
	var out syncBuffer
	base, done := startServer(t, &out, "-budget", "500ms,200000f")

	resp, err := http.Post(base+"/v1/solve", "application/json",
		strings.NewReader(`{"c": "static int x; int *p = &x;", "queries": ["p"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var solved struct {
		PointsTo map[string]struct {
			Targets []string `json:"targets"`
		} `json:"points_to"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(solved.PointsTo["p"].Targets) == 0 {
		t.Fatalf("solve failed: %d %+v", resp.StatusCode, solved)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM:\n%s", out.String())
	}
	for _, frag := range []string{"signal received, draining", "pipserve stopped"} {
		if !strings.Contains(out.String(), frag) {
			t.Fatalf("output missing %q:\n%s", frag, out.String())
		}
	}

	// The listener is really gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}

// TestRouterBackendsFileSIGHUPReload: a router started from a backends
// file picks up membership edits on SIGHUP — the dynamic-membership
// contract at CLI level, without a restart.
func TestRouterBackendsFileSIGHUPReload(t *testing.T) {
	dir := t.TempDir()
	file := dir + "/backends"
	if err := os.WriteFile(file, []byte("# initial cluster\nhttp://127.0.0.1:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out syncBuffer
	base, done := startServer(t, &out, "-router", "-backends-file", file)

	ring := func() (backends int, generation uint64) {
		t.Helper()
		resp, err := http.Get(base + "/debug/ring")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var r struct {
			Generation uint64 `json:"generation"`
			Backends   []struct {
				URL string `json:"url"`
			} `json:"backends"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		return len(r.Backends), r.Generation
	}
	if n, g := ring(); n != 1 || g != 1 {
		t.Fatalf("initial ring: %d backends at generation %d, want 1 at 1", n, g)
	}

	// Edit the file (join one, keep one) and signal the reload.
	if err := os.WriteFile(file,
		[]byte("http://127.0.0.1:1\nhttp://127.0.0.1:2 # joiner\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n, g := ring(); n == 2 && g >= 2 {
			break
		}
		if time.Now().After(deadline) {
			n, g := ring()
			t.Fatalf("SIGHUP reload never applied: %d backends at generation %d\n%s", n, g, out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "backends-file reloaded: +1 -0") {
		t.Fatalf("reload banner missing:\n%s", out.String())
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("router did not exit after SIGTERM")
	}
}
