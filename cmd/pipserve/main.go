// Command pipserve is the long-running analysis service: an HTTP/JSON
// daemon that accepts mini-C or MIR modules and answers points-to and
// alias queries from a shared, cached analysis engine.
//
// Usage:
//
//	pipserve [-addr HOST:PORT] [-config CFG] [-budget B] [-cache-entries N]
//	         [-concurrent N] [-queue N] [-workers N] [-store DIR]
//	pipserve -router -backends URL,URL,...   (shard router mode)
//	pipserve -router -backends-file FILE     (router with SIGHUP-reloaded membership)
//	pipserve -smoke        (ephemeral port, one end-to-end request, exit)
//
// Endpoints:
//
//	POST /v1/solve   {"c": "...", "queries": ["p"]}      points-to sets
//	POST /v1/alias   {"c": "...", "pairs": [["p","q"]]}  alias verdicts
//	POST /v1/resolve {"c": "...", "handle": "..."}       incremental sessions
//	GET  /healthz    liveness; 503 while draining
//	GET  /metrics    Prometheus text exposition (?format=json for the
//	                 legacy JSON body; router mode serves its own families)
//	GET  /debug/trace?id=ID  a trace's spans as Chrome trace_event JSON;
//	                 in -router mode, merged across the router and every
//	                 backend that saw the trace ID
//	GET  /debug/flightrec    recent anomaly dumps from the flight recorder
//	GET  /debug/pprof/*  Go profiling, only with -pprof
//	POST /admin/backends     (router mode) {"op":"add|drain|remove","backend":URL}
//	GET  /debug/ring         (router mode) membership generation + keyspace ownership
//
// -store DIR attaches a persistent solution store: solutions are flushed
// on eviction and drain, and a restarted pipserve over the same directory
// answers its previous working set from fingerprint-verified disk hits
// without re-solving.
//
// -router turns the process into a sharding front door over the -backends
// list: modules are placed by consistent hash (so each shard's cache and
// store stay hot for its keyspace), failed shards are rerouted around,
// and with every shard down the router answers the sound Ω-degradation
// locally rather than dropping requests.
//
// Router membership is dynamic: -backends-file names a file of backend
// URLs (one per line, # comments) re-read on SIGHUP and reconciled
// against the live cluster without a restart, and POST /admin/backends
// adds, drains, or removes single backends at runtime. An active health
// prober opens a dead backend's breaker (and closes it on recovery)
// without waiting for user traffic to pay for the discovery.
//
// SIGINT/SIGTERM starts a graceful drain: new requests get 503 and the
// process exits once every in-flight solve has answered (or after
// -drain-timeout).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/obs"
	"github.com/pip-analysis/pip/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pipserve:", err)
		os.Exit(1)
	}
}

// run is main minus the process plumbing, so tests can drive the full
// lifecycle — flags, listener, signal-triggered drain — in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pipserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7411", "listen address")
	configName := fs.String("config", pip.DefaultConfig().String(),
		"default solver configuration (requests may override with config/?config=)")
	budgetStr := fs.String("budget", "",
		"default solve budget, e.g. 100ms, 5000f, or 100ms,5000f; exhausted budgets yield the sound Ω-degraded solution")
	workers := fs.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	solveWorkers := fs.Int("solve-workers", 0,
		"intra-solve worker count for stratified parallel presaturation (0 = sequential solver)")
	cacheEntries := fs.Int("cache-entries", serve.DefaultCacheEntries,
		"solution cache capacity (LRU eviction beyond it)")
	concurrent := fs.Int("concurrent", serve.DefaultMaxConcurrent,
		"max solves running at once")
	queue := fs.Int("queue", serve.DefaultMaxQueue,
		"max requests waiting for a solve slot before 429")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight solves")
	quiet := fs.Bool("quiet", false, "disable per-request logging")
	enablePprof := fs.Bool("pprof", false,
		"expose Go profiling under /debug/pprof/ (off by default: profiles leak internals, keep the port private)")
	tracePath := fs.String("trace", "",
		"write a Chrome trace_event JSON file of per-request solve spans on shutdown (open in Perfetto or chrome://tracing)")
	traceCheckpoint := fs.Duration("trace-checkpoint", 30*time.Second,
		"with -trace, also checkpoint the trace file this often (and on every flight-recorder dump) so an unclean exit keeps the tail; 0 writes only on clean shutdown")
	flightDir := fs.String("flightrec", "",
		"directory for flight-recorder anomaly dump files (dumps stay in memory at /debug/flightrec either way)")
	checkTrace := fs.String("check-trace", "",
		"validate FILE as Chrome trace_event JSON (as written by -trace or /debug/trace) and exit")
	smoke := fs.Bool("smoke", false,
		"self-test: listen on an ephemeral port, run one end-to-end request, drain, exit")
	retries := fs.Int("retries", 2,
		"re-solves of transiently failed jobs (recovered panics, injected faults); 0 disables retry")
	watchdogFactor := fs.Int("watchdog-factor", 4,
		"abandon solves stuck past N× their wall deadline and answer with the sound Ω-degradation; 0 disables (only fires for budgeted solves)")
	memSoftLimit := fs.Uint64("mem-soft-limit", 0,
		"heap bytes beyond which new solves switch to -tight-budget; 0 disables the guard")
	tightBudgetStr := fs.String("tight-budget", "",
		"budget applied under memory pressure, e.g. 50ms,1000f (componentwise minimum with the request budget)")
	noBreaker := fs.Bool("no-breaker", false,
		"disable the circuit breaker (by default the server sheds load with 503 when the recent failure/degradation rate crosses 50%)")
	chaosSpec := fs.String("chaos", "",
		"arm deterministic fault injection from a spec, e.g. seed=42;serve.handler=error:0.01 (see the fault model section of DESIGN.md)")
	storeDir := fs.String("store", "",
		"persistent solution store directory: solutions flush on eviction and drain, and a restart over the same directory serves its previous working set from verified disk hits")
	routerMode := fs.Bool("router", false,
		"run as a shard router over -backends instead of a solving server")
	backendList := fs.String("backends", "",
		"comma-separated pipserve base URLs to shard across in -router mode, e.g. http://10.0.0.1:7411,http://10.0.0.2:7411")
	backendsFile := fs.String("backends-file", "",
		"file of pipserve base URLs (one per line, # comments) for -router mode; SIGHUP re-reads it and reconciles cluster membership without a restart")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *backendList != "" && !*routerMode {
		return fmt.Errorf("-backends requires -router")
	}
	if *backendsFile != "" && !*routerMode {
		return fmt.Errorf("-backends-file requires -router")
	}
	if *backendList != "" && *backendsFile != "" {
		return fmt.Errorf("-backends and -backends-file are mutually exclusive")
	}
	if *routerMode && *storeDir != "" {
		return fmt.Errorf("-store is a solving-server flag; the router holds no solutions")
	}

	if *checkTrace != "" {
		data, err := os.ReadFile(*checkTrace)
		if err != nil {
			return err
		}
		if err := obs.CheckChrome(data); err != nil {
			return fmt.Errorf("check-trace %s: %w", *checkTrace, err)
		}
		fmt.Fprintf(stdout, "trace ok: %s\n", *checkTrace)
		return nil
	}

	if *chaosSpec != "" {
		disarm, err := pip.ArmChaos(*chaosSpec)
		if err != nil {
			return err
		}
		defer disarm()
	}

	if *routerMode {
		return runRouter(*addr, *backendList, *backendsFile, *flightDir, *drainTimeout, *smoke, *quiet, stdout, stderr)
	}

	cfg, err := pip.ParseConfig(*configName)
	if err != nil {
		return err
	}
	opts := serve.Options{
		Config:         cfg,
		HasConfig:      true,
		Workers:        *workers,
		SolveWorkers:   *solveWorkers,
		CacheEntries:   *cacheEntries,
		MaxConcurrent:  *concurrent,
		MaxQueue:       *queue,
		EnablePprof:    *enablePprof,
		Retries:        *retries,
		WatchdogFactor: *watchdogFactor,
		MemSoftLimit:   *memSoftLimit,
		Breaker:        serve.BreakerOptions{Disabled: *noBreaker},
	}
	if *tightBudgetStr != "" {
		b, err := pip.ParseBudget(*tightBudgetStr)
		if err != nil {
			return err
		}
		opts.TightBudget = b
	}
	opts.FlightDir = *flightDir
	var tr *pip.Trace
	var checkpoint func()
	if *tracePath != "" {
		tr = pip.NewTrace("pipserve", 1<<16)
		opts.Trace = tr
		// Checkpoint writes are atomic (temp file + rename), so a reader
		// or a crash mid-write never sees a torn trace. Wiring the same
		// checkpoint into OnFlightDump means an anomaly snapshots the
		// trace tail to disk even if the process dies moments later.
		path := *tracePath
		checkpoint = func() {
			if err := tr.WriteChromeFile(path); err != nil {
				fmt.Fprintln(stderr, "pipserve: trace checkpoint:", err)
			}
		}
		opts.OnFlightDump = func(string) { checkpoint() }
	}
	if *budgetStr != "" {
		b, err := pip.ParseBudget(*budgetStr)
		if err != nil {
			return err
		}
		opts.DefaultBudget = b
	}
	if !*quiet {
		opts.LogWriter = stderr
	}

	s := serve.New(opts)
	s.Engine().Publish("pipserve.engine")
	if *storeDir != "" {
		if err := s.OpenStore(*storeDir); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		fmt.Fprintf(stdout, "persistent store at %s\n", *storeDir)
	}

	listenAddr := *addr
	if *smoke {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "pipserve listening on %s (config %s)\n", ln.Addr(), cfg)

	if checkpoint != nil && *traceCheckpoint > 0 {
		tick := time.NewTicker(*traceCheckpoint)
		done := make(chan struct{})
		go func() {
			for {
				select {
				case <-tick.C:
					checkpoint()
				case <-done:
					return
				}
			}
		}()
		defer func() { tick.Stop(); close(done) }()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *smoke {
		if err := smokeCheck("http://" + ln.Addr().String()); err != nil {
			httpSrv.Close()
			return fmt.Errorf("smoke: %w", err)
		}
		fmt.Fprintln(stdout, "smoke ok")
	} else {
		select {
		case <-ctx.Done():
			fmt.Fprintln(stdout, "signal received, draining")
		case err := <-serveErr:
			return err
		}
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if *storeDir != "" {
		// The drain already flushed; CloseStore re-syncs and releases the
		// log file so the next process start finds a clean store.
		if err := s.CloseStore(); err != nil {
			return fmt.Errorf("store close: %w", err)
		}
	}
	if tr != nil {
		if err := tr.WriteChromeFile(*tracePath); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(stdout, "wrote trace (%d records, %d dropped) to %s\n",
			tr.Len(), tr.Dropped(), *tracePath)
	}
	fmt.Fprintln(stdout, "pipserve stopped")
	return nil
}

// readBackendsFile parses a -backends-file: one base URL per line (or
// comma-separated), blank lines and # comments ignored.
func readBackendsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var backends []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, b := range strings.Split(line, ",") {
			if b = strings.TrimSpace(b); b != "" {
				backends = append(backends, b)
			}
		}
	}
	return backends, nil
}

// runRouter is the -router mode main loop: a sharding front door over
// the -backends list or a SIGHUP-reloaded -backends-file. In -smoke
// mode with no backends it starts one in-process solving backend on an
// ephemeral port, so the smoke check exercises real forwarding end to
// end.
func runRouter(addr, backendList, backendsFile, flightDir string, drainTimeout time.Duration, smoke, quiet bool, stdout, stderr io.Writer) error {
	var backends []string
	if backendsFile != "" {
		var err error
		if backends, err = readBackendsFile(backendsFile); err != nil {
			return fmt.Errorf("backends-file: %w", err)
		}
		if len(backends) == 0 {
			return fmt.Errorf("backends-file %s: no backend URLs", backendsFile)
		}
	}
	for _, b := range strings.Split(backendList, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	var drainBackend func() error
	if len(backends) == 0 {
		if !smoke {
			return fmt.Errorf("-router requires -backends or -backends-file")
		}
		// Smoke backend: a real solving server inside this process.
		bs := serve.New(serve.Options{})
		bln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		bSrv := &http.Server{Handler: bs.Handler()}
		go bSrv.Serve(bln)
		backends = []string{"http://" + bln.Addr().String()}
		drainBackend = func() error {
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			defer cancel()
			if err := bs.Shutdown(ctx); err != nil {
				return err
			}
			return bSrv.Shutdown(ctx)
		}
	}

	ropts := serve.RouterOptions{Backends: backends, FlightDir: flightDir}
	if !quiet {
		ropts.LogWriter = stderr
	}
	rt := serve.NewRouter(ropts)
	defer rt.Close()

	// SIGHUP re-reads the backends file and reconciles membership in
	// place: joined URLs start owning keys, departed ones are removed
	// (their keyspace reroutes), survivors keep breaker state and pins.
	if backendsFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				urls, err := readBackendsFile(backendsFile)
				if err != nil {
					fmt.Fprintln(stderr, "pipserve: backends-file reload:", err)
					continue
				}
				added, removed, err := rt.SetBackends(urls)
				if err != nil {
					fmt.Fprintln(stderr, "pipserve: backends-file reload:", err)
					continue
				}
				fmt.Fprintf(stdout, "backends-file reloaded: +%d -%d (%d configured)\n",
					len(added), len(removed), len(urls))
			}
		}()
	}

	listenAddr := addr
	if smoke {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "pipserve listening on %s (router over %d backends)\n", ln.Addr(), len(backends))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if smoke {
		if err := routerSmokeCheck("http://" + ln.Addr().String()); err != nil {
			httpSrv.Close()
			return fmt.Errorf("smoke: %w", err)
		}
		fmt.Fprintln(stdout, "smoke ok")
	} else {
		select {
		case <-ctx.Done():
			fmt.Fprintln(stdout, "signal received, draining")
		case err := <-serveErr:
			return err
		}
	}

	rt.Shutdown()
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if drainBackend != nil {
		if err := drainBackend(); err != nil {
			return fmt.Errorf("backend drain: %w", err)
		}
	}
	fmt.Fprintln(stdout, "pipserve stopped")
	return nil
}

// routerSmokeCheck exercises the router end to end: one forwarded solve
// (exact, through the backend) under a caller-chosen trace ID, the
// cluster-wide merged trace for that ID, /healthz, and the router's
// Prometheus exposition.
func routerSmokeCheck(base string) error {
	body, err := json.Marshal(map[string]any{
		"name":    "smoke.c",
		"c":       "static int x;\nint *p = &x;\nextern void take(int**);\nvoid f() { take(&p); }\n",
		"queries": []string{"p"},
	})
	if err != nil {
		return err
	}
	const traceID = "smoke-router-trace"
	req, err := http.NewRequest("POST", base+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("solve: status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != traceID {
		return fmt.Errorf("solve: trace ID not echoed (got %q)", got)
	}
	var solved struct {
		Degraded bool `json:"degraded"`
		PointsTo map[string]struct {
			Targets  []string `json:"targets"`
			External bool     `json:"external"`
		} `json:"points_to"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	pe, ok := solved.PointsTo["p"]
	if !ok || solved.Degraded || !pe.External || len(pe.Targets) == 0 {
		return fmt.Errorf("solve through router: unexpected answer %+v", solved)
	}

	// The merged cluster trace must validate and carry spans from both
	// processes: the router's forward and the backend's solve.
	r, err := http.Get(base + "/debug/trace?id=" + traceID)
	if err != nil {
		return err
	}
	traceBody, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		return err
	}
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/trace: status %d: %s", r.StatusCode, traceBody)
	}
	if err := obs.CheckChrome(traceBody); err != nil {
		return fmt.Errorf("/debug/trace: invalid merged trace: %w", err)
	}
	for _, proc := range []string{`"router"`, `"backend-0"`} {
		if !bytes.Contains(traceBody, []byte(proc)) {
			return fmt.Errorf("/debug/trace: merged trace missing process %s", proc)
		}
	}

	r, err = http.Get(base + "/debug/flightrec")
	if err != nil {
		return err
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/flightrec: status %d", r.StatusCode)
	}

	r, err = http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("/healthz: status %d", r.StatusCode)
	}

	r, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	text, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		return err
	}
	if err := obs.CheckExposition(string(text)); err != nil {
		return fmt.Errorf("/metrics: invalid exposition: %w", err)
	}
	if !strings.Contains(string(text), "pip_router_forwarded_total 1") {
		return fmt.Errorf("/metrics: forward not counted:\n%s", text)
	}
	return nil
}

// smokeCheck exercises the service end to end: one solve with a points-to
// query (carrying a request ID, so a -trace run records a named lane),
// then /healthz, the Prometheus /metrics exposition, and the legacy JSON
// metrics.
func smokeCheck(base string) error {
	body, err := json.Marshal(map[string]any{
		"name":    "smoke.c",
		"c":       "static int x;\nint *p = &x;\nextern void take(int**);\nvoid f() { take(&p); }\n",
		"queries": []string{"p"},
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequest("POST", base+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "smoke-1")
	req.Header.Set("X-Trace-Id", "smoke-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("solve: status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "smoke-1" {
		return fmt.Errorf("solve: request ID not echoed (got %q)", got)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "smoke-trace-1" {
		return fmt.Errorf("solve: trace ID not echoed (got %q)", got)
	}
	var solved struct {
		Degraded bool `json:"degraded"`
		PointsTo map[string]struct {
			Targets  []string `json:"targets"`
			External bool     `json:"external"`
		} `json:"points_to"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	pe, ok := solved.PointsTo["p"]
	if !ok || solved.Degraded || !pe.External || len(pe.Targets) == 0 {
		return fmt.Errorf("solve: unexpected answer %+v", solved)
	}

	// The request's trace must be queryable back out as valid Chrome
	// trace_event JSON, and the flight recorder endpoint must answer.
	r, err := http.Get(base + "/debug/trace?id=smoke-trace-1")
	if err != nil {
		return err
	}
	traceBody, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		return err
	}
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/trace: status %d: %s", r.StatusCode, traceBody)
	}
	if err := obs.CheckChrome(traceBody); err != nil {
		return fmt.Errorf("/debug/trace: invalid trace: %w", err)
	}
	r, err = http.Get(base + "/debug/flightrec")
	if err != nil {
		return err
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/flightrec: status %d", r.StatusCode)
	}

	r, err = http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("/healthz: status %d", r.StatusCode)
	}

	// The default /metrics body must be valid Prometheus text exposition
	// with the solve we just ran visible in the latency histogram.
	r, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	text, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		return err
	}
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: status %d", r.StatusCode)
	}
	if err := obs.CheckExposition(string(text)); err != nil {
		return fmt.Errorf("/metrics: invalid exposition: %w", err)
	}
	if !strings.Contains(string(text), "pip_solve_latency_seconds_count 1") {
		return fmt.Errorf("/metrics: solve latency histogram not populated:\n%s", text)
	}

	r, err = http.Get(base + "/metrics?format=json")
	if err != nil {
		return err
	}
	defer r.Body.Close()
	var legacy struct {
		Server struct {
			Accepted int64 `json:"accepted"`
		} `json:"server"`
	}
	if err := json.NewDecoder(r.Body).Decode(&legacy); err != nil {
		return fmt.Errorf("/metrics?format=json: %w", err)
	}
	if legacy.Server.Accepted != 1 {
		return fmt.Errorf("/metrics?format=json: accepted = %d, want 1", legacy.Server.Accepted)
	}
	return nil
}
