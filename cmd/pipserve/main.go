// Command pipserve is the long-running analysis service: an HTTP/JSON
// daemon that accepts mini-C or MIR modules and answers points-to and
// alias queries from a shared, cached analysis engine.
//
// Usage:
//
//	pipserve [-addr HOST:PORT] [-config CFG] [-budget B] [-cache-entries N]
//	         [-concurrent N] [-queue N] [-workers N]
//	pipserve -smoke        (ephemeral port, one end-to-end request, exit)
//
// Endpoints:
//
//	POST /v1/solve   {"c": "...", "queries": ["p"]}      points-to sets
//	POST /v1/alias   {"c": "...", "pairs": [["p","q"]]}  alias verdicts
//	GET  /healthz    liveness; 503 while draining
//	GET  /metrics    engine stats, cache occupancy, request counters
//
// SIGINT/SIGTERM starts a graceful drain: new requests get 503 and the
// process exits once every in-flight solve has answered (or after
// -drain-timeout).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pipserve:", err)
		os.Exit(1)
	}
}

// run is main minus the process plumbing, so tests can drive the full
// lifecycle — flags, listener, signal-triggered drain — in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pipserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7411", "listen address")
	configName := fs.String("config", pip.DefaultConfig().String(),
		"default solver configuration (requests may override with config/?config=)")
	budgetStr := fs.String("budget", "",
		"default solve budget, e.g. 100ms, 5000f, or 100ms,5000f; exhausted budgets yield the sound Ω-degraded solution")
	workers := fs.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache-entries", serve.DefaultCacheEntries,
		"solution cache capacity (LRU eviction beyond it)")
	concurrent := fs.Int("concurrent", serve.DefaultMaxConcurrent,
		"max solves running at once")
	queue := fs.Int("queue", serve.DefaultMaxQueue,
		"max requests waiting for a solve slot before 429")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight solves")
	quiet := fs.Bool("quiet", false, "disable per-request logging")
	smoke := fs.Bool("smoke", false,
		"self-test: listen on an ephemeral port, run one end-to-end request, drain, exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	cfg, err := pip.ParseConfig(*configName)
	if err != nil {
		return err
	}
	opts := serve.Options{
		Config:        cfg,
		HasConfig:     true,
		Workers:       *workers,
		CacheEntries:  *cacheEntries,
		MaxConcurrent: *concurrent,
		MaxQueue:      *queue,
	}
	if *budgetStr != "" {
		b, err := pip.ParseBudget(*budgetStr)
		if err != nil {
			return err
		}
		opts.DefaultBudget = b
	}
	if !*quiet {
		opts.LogWriter = stderr
	}

	s := serve.New(opts)
	s.Engine().Publish("pipserve.engine")

	listenAddr := *addr
	if *smoke {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "pipserve listening on %s (config %s)\n", ln.Addr(), cfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *smoke {
		if err := smokeCheck("http://" + ln.Addr().String()); err != nil {
			httpSrv.Close()
			return fmt.Errorf("smoke: %w", err)
		}
		fmt.Fprintln(stdout, "smoke ok")
	} else {
		select {
		case <-ctx.Done():
			fmt.Fprintln(stdout, "signal received, draining")
		case err := <-serveErr:
			return err
		}
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "pipserve stopped")
	return nil
}

// smokeCheck exercises the service end to end: one solve with a points-to
// query, then /healthz and /metrics.
func smokeCheck(base string) error {
	body, err := json.Marshal(map[string]any{
		"name":    "smoke.c",
		"c":       "static int x;\nint *p = &x;\nextern void take(int**);\nvoid f() { take(&p); }\n",
		"queries": []string{"p"},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("solve: status %d: %s", resp.StatusCode, b)
	}
	var solved struct {
		Degraded bool `json:"degraded"`
		PointsTo map[string]struct {
			Targets  []string `json:"targets"`
			External bool     `json:"external"`
		} `json:"points_to"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	pe, ok := solved.PointsTo["p"]
	if !ok || solved.Degraded || !pe.External || len(pe.Targets) == 0 {
		return fmt.Errorf("solve: unexpected answer %+v", solved)
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(base + path)
		if err != nil {
			return err
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, r.StatusCode)
		}
	}
	return nil
}
