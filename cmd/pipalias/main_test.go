package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runSelf(t *testing.T, args ...string) (string, error) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pipalias")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestAliasReport(t *testing.T) {
	src := `
extern void *malloc(long);
void f(int *in) {
    int *a = (int*)malloc(4);
    int *b = (int*)malloc(4);
    *a = 1; *b = 2; *in = 3;
}
`
	out, err := runSelf(t, "-c", src)
	if err != nil {
		t.Fatalf("pipalias failed: %v\n%s", err, out)
	}
	for _, frag := range []string{"BasicAA", "Andersen+BasicAA", "MayAlias", "queries"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}
