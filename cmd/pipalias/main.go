// Command pipalias runs the alias-analysis precision client on one mini-C
// file, comparing BasicAA, the sound Andersen analysis, and their
// combination (the paper's Figure 9 setup, on a single file).
//
// Usage:
//
//	pipalias file.c
//	pipalias -c 'void f(int *p) { ... }'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/alias"
)

func main() {
	inline := flag.String("c", "", "inline mini-C source instead of a file")
	configName := flag.String("config", pip.DefaultConfig().String(), "solver configuration")
	budgetStr := flag.String("budget", "", "solve budget, e.g. 100ms, 5000f, or 100ms,5000f")
	demandRoots := flag.String("demand", "", "comma-separated pointer names: solve only the constraint slice reachable from them (alias answers stay sound; unexplored pointers answer MayAlias)")
	incrBase := flag.String("incremental", "", "path to a baseline version of the file: the baseline is solved first and the input re-solves incrementally from its checkpoint")
	solveWorkers := flag.Int("solve-workers", 0, "intra-solve worker count for stratified parallel presaturation (0 = sequential solver)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the solve (open in Perfetto or chrome://tracing)")
	chaosSpec := flag.String("chaos", "", "arm deterministic fault injection from a spec, e.g. seed=42;engine.dispatch=error:0.01 (see the fault model section of DESIGN.md)")
	flag.Parse()

	if *chaosSpec != "" {
		if _, err := pip.ArmChaos(*chaosSpec); err != nil {
			fatal(err)
		}
	}

	cfg, err := pip.ParseConfig(*configName)
	if err != nil {
		fatal(err)
	}
	if *budgetStr != "" {
		b, err := pip.ParseBudget(*budgetStr)
		if err != nil {
			fatal(err)
		}
		cfg.Budget = b
	}
	cfg.SolveWorkers = *solveWorkers
	name, src := "<inline>", *inline
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: pipalias [flags] file.c")
			os.Exit(2)
		}
		name = flag.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	var tr *pip.Trace
	var lane pip.TraceLane
	if *tracePath != "" {
		tr = pip.NewTrace("pipalias", 0)
		lane = tr.NewTrack("solve")
	}
	m, err := pip.CompileC(name, src)
	if err != nil {
		fatal(err)
	}
	var res *pip.Result
	switch {
	case *demandRoots != "":
		var roots []string
		for _, part := range strings.Split(*demandRoots, ",") {
			if part = strings.TrimSpace(part); part != "" {
				roots = append(roots, part)
			}
		}
		eng := pip.NewEngine(pip.BatchOptions{Workers: 1})
		br, err := eng.AnalyzeDemand(m, cfg, nil, roots)
		if err != nil {
			fatal(err)
		}
		res = br.Result
		d := br.Demand
		fmt.Printf("demand-driven (roots: %s): explored %d/%d variables, %d/%d constraints\n",
			strings.Join(roots, ", "), d.ExploredVars, d.TotalVars,
			d.ExploredConstraints, d.TotalConstraints)
	case *incrBase != "":
		data, err := os.ReadFile(*incrBase)
		if err != nil {
			fatal(err)
		}
		bm, err := pip.CompileC(*incrBase, string(data))
		if err != nil {
			fatal(err)
		}
		eng := pip.NewEngine(pip.BatchOptions{Workers: 1})
		sess := eng.NewSession(cfg)
		if r0 := sess.Analyze(bm); r0.Err != nil {
			fatal(r0.Err)
		}
		r1 := sess.Analyze(m)
		if r1.Err != nil {
			fatal(r1.Err)
		}
		res = r1.Result
		inc := r1.Incremental
		path := "from-scratch fallback"
		switch {
		case inc.ReusedSolution:
			path = "reused baseline solution"
		case inc.Resumed:
			path = "resumed from checkpoint"
		}
		fmt.Printf("incremental vs %s: %s (+%d/-%d constraints, %d of %d reused)\n",
			*incrBase, path, inc.Added, inc.Removed, inc.Reused, inc.FullConstraints)
	default:
		res, err = pip.AnalyzeTraced(m, cfg, lane)
		if err != nil {
			fatal(err)
		}
	}
	if tr != nil {
		if err := tr.WriteChromeFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pipalias: wrote trace (%d records) to %s\n", tr.Len(), *tracePath)
	}
	if res.Degraded() {
		fmt.Println("NOTE: budget exhausted; precision below reflects the sound Ω-degraded solution.")
	}
	aa := res.AliasAnalysis()
	report := func(label string, an alias.Analysis) {
		stats := alias.ConflictRate(res.Module, an)
		fmt.Printf("%-20s %6d queries: %5.1f%% MayAlias, %5.1f%% NoAlias, %5.1f%% MustAlias\n",
			label, stats.Total(),
			100*rate(stats.MayAlias, stats.Total()),
			100*rate(stats.NoAlias, stats.Total()),
			100*rate(stats.MustAlias, stats.Total()))
	}
	report("BasicAA", aa.Basic)
	report("Andersen", aa.Andersen)
	report("Andersen+BasicAA", aa.Combined)
}

func rate(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipalias:", err)
	os.Exit(1)
}
