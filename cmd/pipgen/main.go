// Command pipgen generates the synthetic benchmark corpus (the stand-in
// for the paper's Table III programs) and writes it to disk as MIR files.
// Serialization fans out across the engine's worker pool; generation
// itself is one seeded PRNG stream and stays sequential so the corpus is
// byte-identical at any worker count.
//
// Usage:
//
//	pipgen -out corpus/ [-scale 0.1] [-sizescale 0.25] [-seed 1] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/engine"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/ir"
	"github.com/pip-analysis/pip/internal/obs"
	"github.com/pip-analysis/pip/internal/workload"
)

func main() {
	out := flag.String("out", "corpus", "output directory")
	scale := flag.Float64("scale", 0.1, "file-count scale (1.0 = the paper's 3659 files)")
	sizeScale := flag.Float64("sizescale", 0.25, "per-file size scale (1.0 = the paper's sizes)")
	maxInstrs := flag.Int("maxinstrs", 0, "optional per-file instruction cap (0 = none)")
	seed := flag.Int64("seed", 1, "corpus seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size for printing/writing (0 = GOMAXPROCS)")
	showStats := flag.Bool("stats", false, "solve every generated file under the default configuration and print engine stats with aggregated solver telemetry as JSON")
	budgetStr := flag.String("budget", "", "per-solve budget for -stats, e.g. 100ms, 5000f, or 100ms,5000f")
	solveWorkers := flag.Int("solve-workers", 0, "intra-solve worker count for stratified parallel presaturation (0 = sequential solver)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the -stats solve phase (open in Perfetto or chrome://tracing)")
	chaosSpec := flag.String("chaos", "", "arm deterministic fault injection from a spec, e.g. seed=42;engine.dispatch=error:0.01 (see the fault model section of DESIGN.md)")
	flag.Parse()

	if *chaosSpec != "" {
		reg, err := faults.ParseSpec(*chaosSpec)
		if err != nil {
			fatal(err)
		}
		faults.Arm(reg)
	}

	opts := workload.Options{Seed: *seed, Scale: *scale, SizeScale: *sizeScale, MaxInstrs: *maxInstrs}
	files := workload.GenerateCorpus(opts)
	errs := make([]error, len(files))
	var totalInstrs int64
	engine.RunIndexed(len(files), *workers, func(i int) {
		f := files[i]
		path := filepath.Join(*out, f.Name+".mir")
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			errs[i] = err
			return
		}
		if err := os.WriteFile(path, []byte(ir.Print(f.Module)), 0o644); err != nil {
			errs[i] = err
			return
		}
		atomic.AddInt64(&totalInstrs, int64(f.Module.NumInstrs()))
	})
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d files (%d IR instructions) to %s\n", len(files), totalInstrs, *out)

	if *tracePath != "" && !*showStats {
		fatal(fmt.Errorf("-trace records the solve phase, which only runs with -stats"))
	}
	if *showStats {
		var budget core.Budget
		if *budgetStr != "" {
			b, err := core.ParseBudget(*budgetStr)
			if err != nil {
				fatal(err)
			}
			budget = b
		}
		var tr *obs.Trace
		if *tracePath != "" {
			tr = obs.New("pipgen", 0)
		}
		eng := engine.New(engine.Options{Workers: *workers, Budget: budget, Trace: tr, SolveWorkers: *solveWorkers})
		jobs := make([]engine.Job, len(files))
		for i, f := range files {
			jobs[i] = engine.Job{Module: f.Module, Config: core.DefaultConfig()}
		}
		for i, r := range eng.Run(jobs) {
			if r.Err != nil {
				fatal(fmt.Errorf("%s: %v", files[i].Name, r.Err))
			}
		}
		st := eng.Stats()
		fmt.Printf("%s\n%s\n", st, st.JSON())
		if tr != nil {
			if err := tr.WriteChromeFile(*tracePath); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote trace (%d records) to %s\n", tr.Len(), *tracePath)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipgen:", err)
	os.Exit(1)
}
