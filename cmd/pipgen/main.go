// Command pipgen generates the synthetic benchmark corpus (the stand-in
// for the paper's Table III programs) and writes it to disk as MIR files.
//
// Usage:
//
//	pipgen -out corpus/ [-scale 0.1] [-sizescale 0.25] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/pip-analysis/pip/internal/ir"
	"github.com/pip-analysis/pip/internal/workload"
)

func main() {
	out := flag.String("out", "corpus", "output directory")
	scale := flag.Float64("scale", 0.1, "file-count scale (1.0 = the paper's 3659 files)")
	sizeScale := flag.Float64("sizescale", 0.25, "per-file size scale (1.0 = the paper's sizes)")
	maxInstrs := flag.Int("maxinstrs", 0, "optional per-file instruction cap (0 = none)")
	seed := flag.Int64("seed", 1, "corpus seed")
	flag.Parse()

	opts := workload.Options{Seed: *seed, Scale: *scale, SizeScale: *sizeScale, MaxInstrs: *maxInstrs}
	files := workload.GenerateCorpus(opts)
	totalInstrs := 0
	for _, f := range files {
		path := filepath.Join(*out, f.Name+".mir")
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, []byte(ir.Print(f.Module)), 0o644); err != nil {
			fatal(err)
		}
		totalInstrs += f.Module.NumInstrs()
	}
	fmt.Printf("wrote %d files (%d IR instructions) to %s\n", len(files), totalInstrs, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipgen:", err)
	os.Exit(1)
}
