package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateCorpusToDisk(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "pipgen")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	outDir := filepath.Join(dir, "corpus")
	out, err := exec.Command(bin, "-out", outDir, "-scale", "0.003", "-sizescale", "0.02", "-maxinstrs", "500").CombinedOutput()
	if err != nil {
		t.Fatalf("pipgen failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "wrote") {
		t.Fatalf("unexpected output: %s", out)
	}
	// The corpus must exist on disk and contain valid MIR.
	var files []string
	err = filepath.Walk(outDir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".mir") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil || len(files) < 10 {
		t.Fatalf("corpus on disk too small: %d files (%v)", len(files), err)
	}
}
