package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestOptimizeEndToEnd(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "pipopt")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	src := `
extern void *malloc(long);
static long *sa;
static long *sb;
void setup() { sa = (long*)malloc(8); sb = (long*)malloc(8); }
long hot(long n) {
    long *a = sa;
    long *b = sb;
    long acc = *a;
    *b = n;
    long again = *a;
    return acc + again;
}
`
	out, err := exec.Command(bin, "-c", src, "-print").CombinedOutput()
	if err != nil {
		t.Fatalf("pipopt failed: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "BasicAA only:") || !strings.Contains(text, "Andersen+BasicAA:") {
		t.Fatalf("missing comparison lines:\n%s", text)
	}
	if !strings.Contains(text, "module") {
		t.Fatalf("-print did not emit MIR:\n%s", text)
	}
}
