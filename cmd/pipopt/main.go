// Command pipopt runs the alias-analysis-driven optimizations (redundant
// load elimination and dead store elimination) on a mini-C or MIR file,
// comparing how many transformations each alias analysis unlocks — the
// compiler use case from the paper's introduction.
//
// Usage:
//
//	pipopt file.c
//	pipopt -c 'long f(long *p) { ... }' -print
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/alias"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
	"github.com/pip-analysis/pip/internal/opt"
)

func main() {
	inline := flag.String("c", "", "inline mini-C source instead of a file")
	isIR := flag.Bool("ir", false, "input is MIR textual IR")
	printAfter := flag.Bool("print", false, "print the optimized MIR")
	configName := flag.String("config", pip.DefaultConfig().String(), "solver configuration")
	budgetStr := flag.String("budget", "", "solve budget, e.g. 100ms, 5000f, or 100ms,5000f; a degraded (budget-exhausted) solution stays sound, so the optimizations remain valid, just weaker")
	solveWorkers := flag.Int("solve-workers", 0, "intra-solve worker count for stratified parallel presaturation (0 = sequential solver)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the Andersen solve (open in Perfetto or chrome://tracing)")
	chaosSpec := flag.String("chaos", "", "arm deterministic fault injection from a spec, e.g. seed=42;engine.dispatch=error:0.01 (see the fault model section of DESIGN.md)")
	flag.Parse()

	if *chaosSpec != "" {
		if _, err := pip.ArmChaos(*chaosSpec); err != nil {
			fatal(err)
		}
	}

	cfg, err := pip.ParseConfig(*configName)
	if err != nil {
		fatal(err)
	}
	if *budgetStr != "" {
		b, err := pip.ParseBudget(*budgetStr)
		if err != nil {
			fatal(err)
		}
		cfg.Budget = b
	}
	cfg.SolveWorkers = *solveWorkers
	name, src := "<inline>", *inline
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: pipopt [flags] file.c")
			os.Exit(2)
		}
		name = flag.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		src = string(data)
		if strings.HasSuffix(name, ".mir") {
			*isIR = true
		}
	}

	compile := func() *ir.Module {
		var m *ir.Module
		var err error
		if *isIR {
			m, err = pip.ParseIR(src)
		} else {
			m, err = pip.CompileC(name, src)
		}
		if err != nil {
			fatal(err)
		}
		return m
	}

	run := func(label string, an func(m *ir.Module) alias.Analysis) *ir.Module {
		m := compile()
		stats := opt.Run(m, an(m))
		fmt.Printf("%-22s %3d loads eliminated, %3d stores eliminated\n",
			label, stats.LoadsEliminated, stats.StoresEliminated)
		return m
	}

	var tr *pip.Trace
	var lane pip.TraceLane
	if *tracePath != "" {
		tr = pip.NewTrace("pipopt", 0)
		lane = tr.NewTrack("andersen")
	}

	run("BasicAA only:", func(m *ir.Module) alias.Analysis {
		return alias.NewBasicAA(m)
	})
	optimized := run("Andersen+BasicAA:", func(m *ir.Module) alias.Analysis {
		gen := core.Generate(m)
		sol, err := core.SolveTraced(gen.Problem, cfg, lane)
		if err != nil {
			fatal(err)
		}
		return alias.Combined{alias.NewBasicAA(m), alias.NewAndersen(gen, sol)}
	})

	if tr != nil {
		if err := tr.WriteChromeFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pipopt: wrote trace (%d records) to %s\n", tr.Len(), *tracePath)
	}
	if *printAfter {
		fmt.Println()
		fmt.Print(ir.Print(optimized))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipopt:", err)
	os.Exit(1)
}
