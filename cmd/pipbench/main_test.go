package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchEndToEnd(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "pipbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	outDir := filepath.Join(dir, "results")
	out, err := exec.Command(bin,
		"-scale", "0.003", "-sizescale", "0.02", "-maxinstrs", "600",
		"-reps", "1", "-out", outDir).CombinedOutput()
	if err != nil {
		t.Fatalf("pipbench failed: %v\n%s", err, out)
	}
	text := string(out)
	for _, frag := range []string{"Table III", "Figure 9", "Table V", "Table VI", "Headline", "EP Oracle"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("output missing %q:\n%s", frag, text)
		}
	}
	for _, f := range []string{
		"file-sizes-table.txt", "precision.txt",
		"configuration-runtimes-table.txt", "runtime-ratios.txt",
		"runtime-ratios.csv", "configuration-memory-usage-table.txt",
		"headline.txt",
	} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Fatalf("result file %s missing: %v", f, err)
		}
	}
}

func TestBenchSubsetSelection(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "pipbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	out, err := exec.Command(bin,
		"-scale", "0.003", "-sizescale", "0.02", "-maxinstrs", "400",
		"-run", "table3").CombinedOutput()
	if err != nil {
		t.Fatalf("pipbench failed: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "Table III") {
		t.Fatalf("table3 missing:\n%s", text)
	}
	if strings.Contains(text, "measuring solver runtime") {
		t.Fatalf("runtime measurement ran despite -run table3:\n%s", text)
	}
}
