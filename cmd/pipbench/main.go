// Command pipbench regenerates the paper's evaluation: Table III (corpus),
// Figure 9 (alias precision), Table V (solver runtime), Figure 10 (runtime
// ratios), Table VI (explicit pointees), and the headline numbers from the
// running text. Results are printed and, with -out, written to files named
// like the paper artifact's outputs.
//
// Usage:
//
//	pipbench [-scale 0.1] [-sizescale 0.25] [-reps 3] [-workers 0] [-out results/]
//	pipbench -run table5,headline
//	pipbench -run smoke          # engine smoke test: parallel vs sequential
//	pipbench -run incremental    # incremental re-solve of a small edit vs from-scratch
//	pipbench -run store          # persistent-store warm restart vs cold solve
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/pip-analysis/pip/internal/bench"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
	"github.com/pip-analysis/pip/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.1, "file-count scale (1.0 = the paper's 3659 files)")
	sizeScale := flag.Float64("sizescale", 0.25, "per-file size scale")
	maxInstrs := flag.Int("maxinstrs", 0, "optional per-file instruction cap (0 = none)")
	noPath := flag.Bool("nopathological", false, "exclude the escape-heavy outlier files")
	seed := flag.Int64("seed", 1, "corpus seed")
	reps := flag.Int("reps", 3, "timing repetitions per file/configuration (paper: 50)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker-pool size (0 = GOMAXPROCS)")
	solveWorkers := flag.Int("solve-workers", 0, "intra-solve worker count for stratified parallel presaturation (0 = sequential solver)")
	out := flag.String("out", "", "directory to write result files to")
	run := flag.String("run", "all", "comma-separated subset: table3,fig9,table5,fig10,table6,headline,smoke,incremental,store")
	budgetStr := flag.String("budget", "", "per-solve budget, e.g. 100ms, 5000f, or 100ms,5000f; files that exhaust it degrade soundly")
	showStats := flag.Bool("stats", false, "print aggregated engine stats and solver telemetry as JSON at the end")
	cacheEntries := flag.Int("cache-entries", 0, "solution-cache capacity for caching drivers (0 = unbounded)")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark snapshot (per-configuration solve wall, rule firings, worklist peak) to this file; implies the runtime measurement")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the measurement's job and solve spans (open in Perfetto or chrome://tracing)")
	chaosSpec := flag.String("chaos", "", "arm deterministic fault injection from a spec, e.g. seed=42;engine.dispatch=error:0.01 (see the fault model section of DESIGN.md)")
	flag.Parse()

	if *chaosSpec != "" {
		reg, err := faults.ParseSpec(*chaosSpec)
		if err != nil {
			fatal(err)
		}
		faults.Arm(reg)
	}

	known := map[string]bool{"all": true, "table3": true, "fig9": true, "table5": true,
		"fig10": true, "table6": true, "headline": true, "smoke": true, "incremental": true,
		"store": true}
	want := map[string]bool{}
	for _, k := range strings.Split(*run, ",") {
		k = strings.TrimSpace(k)
		if !known[k] {
			fatal(fmt.Errorf("unknown -run target %q (valid: table3,fig9,table5,fig10,table6,headline,smoke,incremental,store,all)", k))
		}
		want[k] = true
	}
	enabled := func(k string) bool { return want["all"] || want[k] }

	emit := func(file, content string) {
		fmt.Println(content)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*out, file), []byte(content), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	opts := workload.Options{
		Seed: *seed, Scale: *scale, SizeScale: *sizeScale,
		MaxInstrs: *maxInstrs, NoPathological: *noPath,
	}
	start := time.Now()
	fmt.Printf("building corpus (scale=%g, sizescale=%g, seed=%d, workers=%d)...\n",
		*scale, *sizeScale, *seed, *workers)
	corpus := bench.BuildCorpusParallel(opts, *workers)
	if *budgetStr != "" {
		b, err := core.ParseBudget(*budgetStr)
		if err != nil {
			fatal(err)
		}
		corpus.Budget = b
	}
	corpus.CacheEntries = *cacheEntries
	corpus.SolveWorkers = *solveWorkers
	var tr *obs.Trace
	if *tracePath != "" {
		// The measurement loop emits a span per job plus per-solve phase
		// spans; size the ring for a full default run.
		tr = obs.New("pipbench", 1<<18)
		corpus.Trace = tr
	}
	fmt.Printf("%s [%.1fs]\n\n", corpus, time.Since(start).Seconds())

	if enabled("table3") {
		emit("file-sizes-table.txt", bench.Table3(corpus))
	}
	// The smoke test re-solves the corpus several times over; it runs only
	// when requested explicitly, not as part of -run all.
	if want["smoke"] {
		fmt.Println("running engine smoke test (sequential vs parallel)...")
		emit("engine-smoke.txt", bench.Smoke(corpus, *workers))
	}
	if enabled("fig9") {
		fmt.Println("running precision client (Figure 9)...")
		emit("precision.txt", bench.RenderFigure9(bench.Figure9(corpus)))
	}
	var incRes *bench.IncrementalResult
	if enabled("incremental") {
		fmt.Println("measuring incremental re-solve (small edit, resume vs from-scratch)...")
		t := time.Now()
		r := bench.MeasureIncremental(corpus, *reps)
		incRes = &r
		fmt.Printf("incremental measurement done [%.1fs]\n\n", time.Since(t).Seconds())
		emit("incremental-resolve.txt", bench.RenderIncremental(r))
	}
	var storeRes *bench.StoreResult
	if enabled("store") {
		fmt.Println("measuring persistent-store warm restart (cold solve+flush vs verified disk hits)...")
		dir, err := os.MkdirTemp("", "pipbench-store-*")
		if err != nil {
			fatal(err)
		}
		t := time.Now()
		r := bench.MeasureStore(corpus, dir)
		storeRes = &r
		os.RemoveAll(dir)
		fmt.Printf("store measurement done [%.1fs]\n\n", time.Since(t).Seconds())
		emit("store-warm-restart.txt", bench.RenderStore(r))
	}
	needRuntime := enabled("table5") || enabled("fig10") || enabled("table6") ||
		enabled("headline") || *jsonPath != ""
	if needRuntime {
		fmt.Printf("measuring solver runtime (%d configurations x %d files x %d reps)...\n",
			len(bench.Table5Configs)+len(bench.EPOracleConfigs), len(corpus.Files), *reps)
		t := time.Now()
		res := bench.MeasureRuntimeVerbose(corpus, *reps, func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		})
		fmt.Printf("measurement done [%.1fs]\n\n", time.Since(t).Seconds())
		if enabled("table5") {
			emit("configuration-runtimes-table.txt", bench.Table5(res))
		}
		if enabled("fig10") {
			emit("runtime-ratios.txt", bench.Figure10(res))
			if *out != "" {
				if err := os.WriteFile(filepath.Join(*out, "runtime-ratios.csv"),
					[]byte(bench.Figure10CSV(res)), 0o644); err != nil {
					fatal(err)
				}
			}
		}
		if enabled("table6") {
			emit("configuration-memory-usage-table.txt",
				bench.Table6(res)+"\n"+bench.RenderScalability(res))
		}
		if enabled("headline") {
			emit("headline.txt", bench.RenderHeadline(bench.Headline(res)))
		}
		if *jsonPath != "" {
			snap := bench.Snapshot(corpus, res, *reps)
			snap.Incremental = incRes
			snap.Store = storeRes
			if err := os.WriteFile(*jsonPath, []byte(snap.JSON()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote benchmark snapshot to %s\n", *jsonPath)
		}
	}
	if tr != nil {
		if err := tr.WriteChromeFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace (%d records, %d dropped) to %s\n", tr.Len(), tr.Dropped(), *tracePath)
	}
	if *showStats {
		st := corpus.EngineStats()
		fmt.Printf("\n%s\n%s\n", st, st.JSON())
		if *out != "" {
			if err := os.WriteFile(filepath.Join(*out, "engine-stats.json"),
				[]byte(st.JSON()+"\n"), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipbench:", err)
	os.Exit(1)
}
