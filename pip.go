// Package pip is the public API of this reproduction of "PIP: Making
// Andersen's Points-to Analysis Sound and Practical for Incomplete C
// Programs" (CGO 2026).
//
// The library analyzes a single translation unit (an incomplete program)
// and produces a points-to solution that is sound no matter what external
// modules the unit is eventually linked with. Inputs can be mini-C source
// (compiled by the built-in frontend) or MIR, the library's LLVM-like
// textual IR.
//
// Basic use:
//
//	res, err := pip.AnalyzeC("file.c", src, pip.DefaultConfig())
//	targets, external, _ := res.PointsTo("callMe.r")
//
// The Config type selects among the paper's solver configurations, e.g.
// pip.MustParseConfig("IP+WL(FIFO)+PIP").
package pip

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/pip-analysis/pip/internal/alias"
	"github.com/pip-analysis/pip/internal/callgraph"
	"github.com/pip-analysis/pip/internal/cfront"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/core/incr"
	"github.com/pip-analysis/pip/internal/engine"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/ir"
	"github.com/pip-analysis/pip/internal/modref"
	"github.com/pip-analysis/pip/internal/obs"
	"github.com/pip-analysis/pip/internal/opt"
	"github.com/pip-analysis/pip/internal/store"
)

// Config selects a solver configuration (paper Table IV). Use
// DefaultConfig, ParseConfig, or AllConfigs to obtain one.
type Config = core.Config

// DefaultConfig returns the fastest configuration overall:
// IP+WL(FIFO)+PIP.
func DefaultConfig() Config { return core.DefaultConfig() }

// ParseConfig parses the paper's configuration notation, for example
// "EP+OVS+WL(LRF)+OCD" or "IP+WL(FIFO)+PIP".
func ParseConfig(s string) (Config, error) { return core.ParseConfig(s) }

// MustParseConfig is ParseConfig that panics on error.
func MustParseConfig(s string) Config { return core.MustParseConfig(s) }

// AllConfigs enumerates every valid solver configuration.
func AllConfigs() []Config { return core.AllConfigs() }

// Budget bounds a solve (wall-clock deadline and/or rule-firing cap). A
// solve that exhausts its budget returns the trivially sound Ω-degraded
// solution instead of the exact fixed point; see Result.Degraded.
type Budget = core.Budget

// ParseBudget parses a budget string: a duration ("100ms"), a firing cap
// ("5000f"), or both separated by a comma.
func ParseBudget(s string) (Budget, error) { return core.ParseBudget(s) }

// BudgetFromContext tightens base so a solve started now finishes within
// ctx's deadline; an already-expired context yields a budget that degrades
// immediately. This is how a server maps request deadlines onto solver
// budgets: overloaded requests degrade soundly instead of timing out.
func BudgetFromContext(ctx context.Context, base Budget) Budget {
	return core.BudgetFromContext(ctx, base)
}

// Telemetry is the per-solve instrumentation block: phase timers, rule
// firing counts, and the worklist high-water mark.
type Telemetry = core.Telemetry

// Trace is a low-overhead structured trace of one or more solves: a
// fixed-capacity ring of spans, instant events, and counter samples that
// can be exported as Chrome trace_event JSON (chrome://tracing, Perfetto)
// or rendered as a plain-text phase tree. See NewTrace.
type Trace = obs.Trace

// TraceLane is one named lane (track) of a Trace; pass it to
// AnalyzeTraced or BatchOptions to direct recording. The zero TraceLane
// records nothing.
type TraceLane = obs.Track

// NewTrace returns an enabled trace with the given label. Capacity is the
// maximum number of resident records; <= 0 picks a default (64k records)
// that comfortably holds a corpus batch. When the ring fills, new records
// are dropped (and counted) rather than overwriting the solve's opening
// phases.
func NewTrace(label string, capacity int) *Trace { return obs.New(label, capacity) }

// Module is a parsed or compiled translation unit.
type Module = ir.Module

// CompileC compiles mini-C source into a module.
func CompileC(name, src string) (*Module, error) { return cfront.Compile(name, src) }

// ParseIR parses MIR textual IR into a module.
func ParseIR(src string) (*Module, error) { return ir.Parse(src) }

// PrintIR renders a module in MIR textual syntax.
func PrintIR(m *Module) string { return ir.Print(m) }

// AliasResult is an alias query answer.
type AliasResult = alias.Result

// Alias query answers.
const (
	NoAlias   = alias.NoAlias
	MayAlias  = alias.MayAlias
	MustAlias = alias.MustAlias
)

// Summary is a handwritten points-to summary for an imported library
// function (paper Section III-B). Passing summaries to
// AnalyzeWithSummaries improves precision over the generic conservative
// treatment of imported functions; malloc/free/memcpy summaries are built
// in.
type Summary = core.Summary

// Result is a completed analysis of one module.
type Result struct {
	Module *Module
	gen    *core.Gen
	sol    *core.Solution
}

// Analyze runs both analysis phases on a module.
func Analyze(m *Module, cfg Config) (*Result, error) {
	return AnalyzeWithSummaries(m, cfg, nil)
}

// AnalyzeWithSummaries is Analyze with extra handwritten summaries for
// imported functions (entries override the built-in defaults).
func AnalyzeWithSummaries(m *Module, cfg Config, summaries map[string]Summary) (*Result, error) {
	return analyzeTraced(m, cfg, summaries, obs.Track{})
}

// AnalyzeTraced is Analyze recording the solve's phase spans, cycle
// collapses, and convergence profile onto the given trace lane:
//
//	tr := pip.NewTrace("my-solve", 0)
//	res, err := pip.AnalyzeTraced(m, cfg, tr.NewTrack("solver"))
//	_ = tr.WriteChromeFile("solve.trace.json") // open in Perfetto
func AnalyzeTraced(m *Module, cfg Config, lane TraceLane) (*Result, error) {
	return analyzeTraced(m, cfg, nil, lane)
}

func analyzeTraced(m *Module, cfg Config, summaries map[string]Summary, lane obs.Track) (*Result, error) {
	gen := core.GenerateWith(m, summaries)
	sol, err := core.SolveTraced(gen.Problem, cfg, lane)
	if err != nil {
		return nil, err
	}
	return &Result{Module: m, gen: gen, sol: sol}, nil
}

// BatchOptions configures AnalyzeBatch and NewEngine.
type BatchOptions struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Cache reuses solutions for modules with identical content (keyed by
	// content hash + configuration).
	Cache bool
	// CacheEntries bounds the number of resident cached solutions; the
	// least recently used entry is evicted beyond the bound. <= 0 means
	// unbounded — fine for one-shot batch runs, but long-running processes
	// (servers) must set a cap or the cache grows without bound.
	CacheEntries int
	// Summaries are extra handwritten summaries applied to every module.
	Summaries map[string]Summary
	// Budget bounds each module's solve; modules that exhaust it yield
	// Degraded results (see Budget).
	Budget Budget
	// SolveWorkers is the default intra-solve worker count applied to
	// every job whose config leaves core.Config.SolveWorkers zero: 0 keeps
	// the legacy sequential solver, >= 1 enables stratified parallel
	// presaturation inside each solve. Solutions are bit-identical for
	// every count >= 1 (enforced by internal/core/differential).
	SolveWorkers int
	// Trace, when non-nil, records engine activity (one track per pool
	// worker, a span per job with queue-wait and outcome, the solve's
	// phase spans nested inside) onto the trace. Nil costs nothing.
	Trace *Trace

	// Retries re-solves a transiently failed job (recovered panic or
	// injected fault) up to this many times with exponential backoff.
	// 0 disables retry. Degraded results are successes and never retried.
	Retries int
	// WatchdogFactor arms the solve watchdog: a solve still running after
	// WatchdogFactor× its wall deadline is abandoned and answered with the
	// sound Ω-degraded solution. <= 0 disables the watchdog; it also never
	// fires for solves with no deadline.
	WatchdogFactor int
	// MemSoftLimit switches new jobs to TightBudget while the process heap
	// exceeds this many bytes — solves degrade to Ω sooner instead of
	// pushing toward OOM. 0 disables the guard.
	MemSoftLimit uint64
	// TightBudget is the budget applied under memory pressure (componentwise
	// minimum with the job's own budget, so it only ever tightens).
	TightBudget Budget
	// OnAnomaly, when non-nil, is called at the engine's anomaly sites
	// (watchdog-forced Ω, memory-guard tightening, cache verify-on-read
	// failure, store verified-miss) with a stable reason string and a
	// detail. The server wires it to its flight recorder. Called outside
	// engine locks; must return quickly.
	OnAnomaly func(reason, detail string)
}

// ArmChaos arms process-global fault injection from a spec string like
//
//	seed=42;engine.dispatch=error:0.01;core.wave=panic:0.01
//
// and returns the disarm function. Faults fire deterministically as a
// function of (seed, injection point, hit number), so a chaos run is
// reproducible bit-for-bit given the same spec and workload. Injection
// points cover the solver core, the engine's dispatch and cache, and the
// serve admission/handler path; `*` addresses every point not named
// explicitly. See the "Fault model & resilience" section of DESIGN.md.
func ArmChaos(spec string) (disarm func(), err error) {
	reg, err := faults.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	faults.Arm(reg)
	return faults.Disarm, nil
}

// BatchResult is one module's outcome: either Result or Err is set.
// CacheHit reports that the solution was reused from an earlier,
// content-identical analysis on the same engine.
type BatchResult struct {
	Result   *Result
	Err      error
	CacheHit bool
	// Degraded reports that this module's solve exhausted its Budget.
	Degraded bool
	// Duration is the solve time (zero on cache hits).
	Duration time.Duration
	// Incremental describes which incremental path a Session analysis took
	// (reuse, resume, or fallback); nil for ordinary analyses.
	Incremental *IncrementalStats
	// Demand reports how much of the problem a demand-driven analysis
	// explored; nil for exhaustive analyses.
	Demand *DemandStats
	// DiskHit reports that the solution was loaded, fingerprint-verified,
	// from the engine's persistent store rather than solved — the
	// warm-restart path. Disk hits are also CacheHits.
	DiskHit bool
}

// IncrementalStats reports which path an incremental re-analysis took
// (solution reuse, checkpoint resume, or from-scratch fallback) and how
// many constraints it reused.
type IncrementalStats = incr.UpdateStats

// DemandStats reports how much of a problem a demand-driven analysis
// explored: variables and constraints in the solved slice versus totals.
type DemandStats = core.DemandStats

// Engine is a shared, reusable analysis engine: a bounded worker pool with
// a size-bounded LRU solution cache, per-solve budgets, and per-job panic
// recovery. Unlike the one-shot AnalyzeBatch helper, an Engine is built to
// live for the whole process — a long-running service shares one Engine
// across every request so cached solutions and stats accumulate.
type Engine struct {
	eng *engine.Engine
}

// NewEngine returns a shared engine with the given options.
func NewEngine(opts BatchOptions) *Engine {
	return &Engine{eng: engine.New(engine.Options{
		Workers:        opts.Workers,
		Cache:          opts.Cache,
		CacheEntries:   opts.CacheEntries,
		Budget:         opts.Budget,
		SolveWorkers:   opts.SolveWorkers,
		Trace:          opts.Trace,
		Retry:          engine.RetryPolicy{Max: opts.Retries},
		WatchdogFactor: opts.WatchdogFactor,
		MemSoftLimit:   opts.MemSoftLimit,
		TightBudget:    opts.TightBudget,
		OnAnomaly:      opts.OnAnomaly,
	})}
}

// Analyze runs one module through the shared engine: the solve hits the
// engine's cache, honours its default budget (tightened by cfg.Budget when
// set), and converts panics into errors.
func (e *Engine) Analyze(m *Module, cfg Config) BatchResult {
	return e.AnalyzeWithSummaries(m, cfg, nil)
}

// AnalyzeWithSummaries is Analyze with extra imported-function summaries.
func (e *Engine) AnalyzeWithSummaries(m *Module, cfg Config, summaries map[string]Summary) BatchResult {
	return toBatchResult(m, e.eng.RunOne(engine.Job{Module: m, Config: cfg, Summaries: summaries}))
}

// AnalyzeTraced is AnalyzeWithSummaries recording the solve's phase spans
// and convergence profile onto the given trace lane — the hook a server
// uses to attach a request-scoped lane (named by its request ID) to the
// solve running on the shared engine.
func (e *Engine) AnalyzeTraced(m *Module, cfg Config, summaries map[string]Summary, lane TraceLane) BatchResult {
	return toBatchResult(m, e.eng.RunOne(engine.Job{Module: m, Config: cfg, Summaries: summaries, Trace: lane}))
}

// AnalyzeBatch analyzes many independent modules concurrently across the
// engine's worker pool; results come back in input order.
func (e *Engine) AnalyzeBatch(mods []*Module, cfg Config, summaries map[string]Summary) []BatchResult {
	jobs := make([]engine.Job, len(mods))
	for i, m := range mods {
		jobs[i] = engine.Job{Module: m, Config: cfg, Summaries: summaries}
	}
	out := make([]BatchResult, len(mods))
	for i, r := range e.eng.Run(jobs) {
		out[i] = toBatchResult(mods[i], r)
	}
	return out
}

// EngineStats is the engine's cumulative counter block (jobs, cache hits
// and occupancy, failures, degradations, busy wall time, telemetry).
type EngineStats = engine.Stats

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats { return e.eng.Stats() }

// CacheCap returns the configured cache bound (0 = unbounded or no cache).
func (e *Engine) CacheCap() int { return e.eng.CacheCap() }

// Publish exports the engine's live stats under the given expvar name.
func (e *Engine) Publish(name string) { e.eng.Publish(name) }

// OpenStore attaches a persistent on-disk solution store rooted at dir as
// the cache's second tier: memory hit → verified disk hit → solve. Cached
// solutions are flushed to it lazily on LRU eviction and in bulk by
// SyncStore, so a process restarted over the same directory answers its
// previous working set without re-solving. Every load is CRC- and
// fingerprint-verified; corrupt or stale entries are misses, never served.
func (e *Engine) OpenStore(dir string) error {
	ds, err := store.Open(dir)
	if err != nil {
		return err
	}
	e.eng.SetStore(ds)
	return nil
}

// SyncStore flushes every resident non-degraded cached solution to the
// persistent store and syncs it to stable storage. Servers call this on
// graceful drain. No-op when no store is attached.
func (e *Engine) SyncStore() error { return e.eng.SyncStore() }

// CloseStore detaches and closes the persistent store (flushing the cache
// to it first). No-op when no store is attached.
func (e *Engine) CloseStore() error {
	ds := e.eng.DiskStore()
	if ds == nil {
		return nil
	}
	err := e.eng.SyncStore()
	e.eng.SetStore(nil)
	if cerr := ds.Close(); err == nil {
		err = cerr
	}
	return err
}

// AnalyzeDegraded returns the trivially sound Ω-degraded analysis of m
// without solving: every pointer-compatible variable points to external
// memory and everything escapes. It is the answer of last resort — the
// shard router serves it when every backend and the local solve path are
// unavailable, because a sound over-approximation is always preferable to
// a drop or an error.
func AnalyzeDegraded(m *Module) *Result {
	gen := core.Generate(m)
	return &Result{Module: m, gen: gen, sol: core.DegradedSolution(gen.Problem)}
}

func toBatchResult(m *Module, r engine.Result) BatchResult {
	if r.Err != nil {
		return BatchResult{Err: r.Err}
	}
	// On a cache hit r.Gen belongs to the module instance that populated
	// the cache, and its value→variable maps are keyed by that instance's
	// values. Pair the Result with that module so name queries resolve;
	// pairing it with m (a structurally equal but distinct instance) would
	// make every lookup miss.
	if r.Gen != nil && r.Gen.Module != nil {
		m = r.Gen.Module
	}
	return BatchResult{
		Result:      &Result{Module: m, gen: r.Gen, sol: r.Sol},
		CacheHit:    r.CacheHit,
		Degraded:    r.Degraded,
		Duration:    r.Duration,
		Incremental: r.Incremental,
		Demand:      r.DemandStats,
		DiskHit:     r.DiskHit,
	}
}

// AnalyzeDemand runs a demand-driven analysis: only the constraint
// components reachable from the named root pointers are solved; every
// other variable soundly answers Ω (it escapes and may point to external
// memory). Root names resolve like PointsTo names ("global", "func.local",
// "func.$ret"). The returned result answers queries over the whole module
// — exactly on the explored slice, with Ω elsewhere — and reports how much
// was explored in BatchResult.Demand.
func (e *Engine) AnalyzeDemand(m *Module, cfg Config, summaries map[string]Summary, rootNames []string) (BatchResult, error) {
	gen, roots, err := DemandRoots(m, summaries, rootNames)
	if err != nil {
		return BatchResult{Err: err}, err
	}
	res := e.eng.RunOne(engine.Job{Module: m, Gen: gen, Config: cfg, Demand: roots})
	return toBatchResult(m, res), res.Err
}

// Session is one incremental analysis lineage on a shared engine: a module
// analyzed through a Session persists its constraint summary and (when the
// configuration permits) the solver's propagation state, so re-analyzing
// an edited version diffs the constraint sets and reuses, resumes, or
// falls back as the edit allows. The configuration is fixed when the
// session is created — analyzing under a different configuration is a
// different lineage. A Session is safe for concurrent use; updates are
// serialized.
type Session struct {
	eng *engine.Engine
	cfg Config

	mu sync.Mutex
	st *incr.State
}

// NewSession starts an incremental lineage with the given configuration
// on this engine.
func (e *Engine) NewSession(cfg Config) *Session {
	return &Session{eng: e.eng, cfg: cfg}
}

// Generation returns the lineage's current generation number, or -1 before
// the first analysis.
func (s *Session) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st == nil {
		return -1
	}
	return s.st.Generation
}

// Analyze (re-)analyzes a version of the session's module. The first call
// solves from scratch; later calls diff the module's constraints against
// the previous generation and take the cheapest sound path (reuse the
// solution, resume propagation over the additions, or fall back to a full
// solve). BatchResult.Incremental reports which path ran.
func (s *Session) Analyze(m *Module) BatchResult {
	return s.AnalyzeWithSummaries(m, nil)
}

// AnalyzeWithSummaries is Session.Analyze with extra imported-function
// summaries.
func (s *Session) AnalyzeWithSummaries(m *Module, summaries map[string]Summary) BatchResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, nst := s.eng.RunIncremental(s.st, engine.Job{Module: m, Config: s.cfg, Summaries: summaries})
	if res.Err == nil {
		s.st = nst
	}
	return toBatchResult(m, res)
}

// AnalyzeBatch analyzes many independent modules concurrently on a fresh
// batch-analysis engine. Each translation unit is an independent
// incomplete-program analysis, so batches parallelize perfectly; results
// come back in input order and are bit-identical to analyzing each module
// alone (the engine's differential tests enforce this). A module that
// fails — even one whose analysis panics — yields an Err entry without
// affecting the other modules.
func AnalyzeBatch(mods []*Module, cfg Config, opts BatchOptions) []BatchResult {
	return NewEngine(opts).AnalyzeBatch(mods, cfg, opts.Summaries)
}

// AnalyzeC compiles and analyzes mini-C source.
func AnalyzeC(name, src string, cfg Config) (*Result, error) {
	m, err := CompileC(name, src)
	if err != nil {
		return nil, err
	}
	return Analyze(m, cfg)
}

// AnalyzeIR parses and analyzes MIR text.
func AnalyzeIR(src string, cfg Config) (*Result, error) {
	m, err := ParseIR(src)
	if err != nil {
		return nil, err
	}
	return Analyze(m, cfg)
}

// lookupValue resolves a user-facing name to an IR value:
//
//	"g"        a global or function symbol
//	"f.x"      local value %x (parameter or instruction result) in @f
//
// The standalone form takes the module explicitly so root names can be
// resolved before any solve exists (demand-driven queries resolve their
// roots pre-solve; Result methods resolve post-solve).
func lookupValue(m *Module, name string) (ir.Value, error) {
	if fn, local, ok := strings.Cut(name, "."); ok {
		f := m.Func(fn)
		if f == nil {
			return nil, fmt.Errorf("no function %q", fn)
		}
		for _, p := range f.Params {
			if p.PName == local {
				return p, nil
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.IName == local {
					return in, nil
				}
			}
		}
		return nil, fmt.Errorf("no value %%%s in @%s", local, fn)
	}
	if g := m.Global(name); g != nil {
		return g, nil
	}
	if f := m.Func(name); f != nil {
		return f, nil
	}
	return nil, fmt.Errorf("no symbol @%s", name)
}

func (r *Result) lookupValue(name string) (ir.Value, error) {
	return lookupValue(r.Module, name)
}

// varFor maps a value to the constraint variable holding its points-to set.
// For globals this is the memory cell (what the global contains), matching
// the paper's Figure 1 discussion of the pointer variable p.
func varFor(gen *core.Gen, v ir.Value) (core.VarID, error) {
	switch val := v.(type) {
	case *ir.Global:
		if id, ok := gen.MemOf[val]; ok && gen.Problem.PtrCompat[id] {
			return id, nil
		}
		return core.NoVar, fmt.Errorf("@%s holds no pointers", val.GName)
	case *ir.Instr:
		if val.Op == ir.OpAlloca {
			// A named C local: report what the stack slot contains, not
			// the (trivial) address value.
			if id, ok := gen.MemOf[val]; ok && gen.Problem.PtrCompat[id] {
				return id, nil
			}
			return core.NoVar, fmt.Errorf("%%%s holds no pointers", val.IName)
		}
		if id, ok := gen.VarOf[v]; ok {
			return id, nil
		}
		return core.NoVar, fmt.Errorf("%s has no points-to set", v.Ident())
	default:
		if id, ok := gen.VarOf[v]; ok {
			return id, nil
		}
		return core.NoVar, fmt.Errorf("%s has no points-to set", v.Ident())
	}
}

func (r *Result) varFor(v ir.Value) (core.VarID, error) {
	return varFor(r.gen, v)
}

// varForName resolves a query name to a constraint variable. In addition
// to "global" and "func.local", the pseudo-local "func.$ret" names a
// function's return-value variable. Like lookupValue it needs only the
// module and its generated constraints, not a solution.
func varForName(m *Module, gen *core.Gen, name string) (core.VarID, error) {
	if fn, local, ok := strings.Cut(name, "."); ok && local == "$ret" {
		f := m.Func(fn)
		if f == nil {
			return core.NoVar, fmt.Errorf("no function %q", fn)
		}
		if id, ok := gen.RetOf[f]; ok {
			return id, nil
		}
		return core.NoVar, fmt.Errorf("@%s returns no pointers", fn)
	}
	v, err := lookupValue(m, name)
	if err != nil {
		return core.NoVar, err
	}
	return varFor(gen, v)
}

func (r *Result) varForName(name string) (core.VarID, error) {
	return varForName(r.Module, r.gen, name)
}

// DemandRoots resolves query names ("global", "func.local", "func.$ret")
// to the constraint variables a demand-driven solve must explore. It runs
// constraint generation but no solve; pass the returned Gen to the engine
// job (or AnalyzeDemand does both).
func DemandRoots(m *Module, summaries map[string]Summary, names []string) (*core.Gen, []core.VarID, error) {
	gen := core.GenerateWith(m, summaries)
	roots := make([]core.VarID, 0, len(names))
	for _, name := range names {
		id, err := varForName(m, gen, name)
		if err != nil {
			return nil, nil, fmt.Errorf("demand root %q: %w", name, err)
		}
		roots = append(roots, id)
	}
	return gen, roots, nil
}

// PointsTo returns the named memory locations the value may target, plus
// whether it may additionally target external (unknown) memory. Names take
// the form "global", "func.local", or "func.$ret".
func (r *Result) PointsTo(name string) (targets []string, external bool, err error) {
	id, err := r.varForName(name)
	if err != nil {
		return nil, false, err
	}
	for _, x := range r.sol.PointsTo(id) {
		if x == core.OmegaPointee {
			external = true
			continue
		}
		targets = append(targets, r.gen.Problem.Names[x])
	}
	sort.Strings(targets)
	return targets, external, nil
}

// PointsToExternal reports whether the named value may hold a pointer of
// unknown origin (p ⊒ Ω).
func (r *Result) PointsToExternal(name string) (bool, error) {
	id, err := r.varForName(name)
	if err != nil {
		return false, err
	}
	return r.sol.PointsToExternal(id), nil
}

// Escaped reports whether the named object is externally accessible
// (Ω ⊒ {x}).
func (r *Result) Escaped(name string) (bool, error) {
	v, err := r.lookupValue(name)
	if err != nil {
		return false, err
	}
	switch val := v.(type) {
	case *ir.Global:
		return r.sol.Escaped(r.gen.MemOf[val]), nil
	case *ir.Function:
		return r.sol.Escaped(r.gen.MemOf[val]), nil
	case *ir.Instr:
		if val.Op == ir.OpAlloca {
			return r.sol.Escaped(r.gen.MemOf[val]), nil
		}
	}
	return false, fmt.Errorf("%q does not name a memory object", name)
}

// ExternallyAccessible lists every escaped memory location by name.
func (r *Result) ExternallyAccessible() []string {
	var out []string
	for _, x := range r.sol.ExternalSet() {
		out = append(out, r.gen.Problem.Names[x])
	}
	sort.Strings(out)
	return out
}

// Dump renders the complete points-to solution.
func (r *Result) Dump() string { return r.sol.Dump() }

// ConstraintGraphDOT renders the solved constraint graph in Graphviz
// format, following the paper's drawing conventions (registers as circles,
// memory locations as squares, complex edges dashed).
func (r *Result) ConstraintGraphDOT() string {
	return core.SolutionDOT(r.gen.Problem, r.sol)
}

// Stats returns solver statistics for the run.
func (r *Result) Stats() core.SolveStats { return r.sol.Stats }

// Telemetry returns the solve's instrumentation block.
func (r *Result) Telemetry() Telemetry { return r.sol.Telemetry }

// Degraded reports that the solve exhausted its Budget and the solution is
// the trivially sound Ω-degraded one (everything escapes, every pointer
// may target external memory) rather than the exact fixed point.
func (r *Result) Degraded() bool { return r.sol.Degraded }

// AliasAnalysis constructs the combined Andersen+BasicAA alias analysis of
// the paper's precision evaluation (Figure 9).
func (r *Result) AliasAnalysis() AliasAnalysis {
	basic := alias.NewBasicAA(r.Module)
	and := alias.NewAndersen(r.gen, r.sol)
	return AliasAnalysis{
		Basic:    basic,
		Andersen: and,
		Combined: alias.Combined{basic, and},
	}
}

// AliasAnalysis bundles the three analysis configurations of Figure 9.
type AliasAnalysis struct {
	Basic    alias.Analysis
	Andersen alias.Analysis
	Combined alias.Analysis
}

// Alias answers a pairwise alias query between two named pointer values
// using the combined Andersen+BasicAA analysis: may the memory ranges
// addressed by a and b (each sized bytes wide; <= 0 means 1) overlap?
// Names resolve like PointsTo names: "global", "func.local". On a
// Degraded result the answer is conservative (typically MayAlias), never
// unsound.
func (r *Result) Alias(a, b string, size int64) (AliasResult, error) {
	va, err := r.lookupValue(a)
	if err != nil {
		return MayAlias, err
	}
	vb, err := r.lookupValue(b)
	if err != nil {
		return MayAlias, err
	}
	if size <= 0 {
		size = 1
	}
	return r.AliasAnalysis().Combined.Alias(va, size, vb, size), nil
}

// MayAliasRate runs the paper's load/store conflict-rate client over the
// module with the given analysis and returns the fraction of MayAlias
// answers (lower is more precise).
func (r *Result) MayAliasRate(an alias.Analysis) float64 {
	return alias.ConflictRate(r.Module, an).MayRate()
}

// OptStats counts the transformations applied by Optimize.
type OptStats = opt.Stats

// Optimize applies the alias-driven optimizations (redundant-load and
// dead-store elimination) to the module in place, using the combined
// Andersen+BasicAA analysis. The Result's points-to information remains
// valid: removing instructions only shrinks the program's behaviours.
func (r *Result) Optimize() OptStats {
	aa := r.AliasAnalysis()
	return opt.Run(r.Module, aa.Combined)
}

// OptimizeInterprocedural is Optimize with call effects resolved through
// the call graph and mod/ref summaries instead of treated conservatively.
func (r *Result) OptimizeInterprocedural() (OptStats, error) {
	ctx, err := opt.NewContext(r.Module, core.DefaultConfig())
	if err != nil {
		return OptStats{}, err
	}
	return opt.RunInterproc(r.Module, ctx), nil
}

// CallGraph builds a sound call graph from the points-to solution:
// indirect calls resolve through points-to sets; calls that may reach (or
// arrive from) external modules are represented explicitly.
func (r *Result) CallGraph() *CallGraph {
	return callgraph.Build(r.Module, r.gen, r.sol)
}

// CallGraph is a sound call graph for an incomplete program.
type CallGraph = callgraph.Graph

// ModRef computes sound per-function mod/ref summaries, transitively
// through the call graph.
func (r *Result) ModRef(cg *CallGraph) *ModRefAnalysis {
	return modref.Compute(r.Module, r.gen, r.sol, cg)
}

// ModRefAnalysis holds per-function memory summaries.
type ModRefAnalysis = modref.Analysis

// FunctionMayModify reports whether calling the named function may modify
// the named global (including modification by external code the function
// may call).
func (r *Result) FunctionMayModify(mr *ModRefAnalysis, fn, global string) (bool, error) {
	f := r.Module.Func(fn)
	if f == nil {
		return false, fmt.Errorf("no function %q", fn)
	}
	g := r.Module.Global(global)
	if g == nil {
		return false, fmt.Errorf("no global %q", global)
	}
	sum := mr.Summaries[f]
	if sum == nil {
		return false, fmt.Errorf("no summary for %q (declaration?)", fn)
	}
	return sum.MayMod(r.sol, r.gen.MemOf[g]), nil
}
