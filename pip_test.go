package pip

import (
	"strings"
	"testing"
)

const figure1C = `
static int x, y;
int z;
extern int* getPtr();

int* p = &x;

void callMe(int* q) {
    int w;
    int* r = getPtr();
    if (r == NULL)
        r = &w;
}
`

func TestAnalyzeCFigure1(t *testing.T) {
	res, err := AnalyzeC("figure1.c", figure1C, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	targets, ext, err := res.PointsTo("p")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(targets, " ")
	if !strings.Contains(joined, "@x") || !strings.Contains(joined, "@z") || !ext {
		t.Fatalf("PointsTo(p) = %v ext=%v, want x, z, external", targets, ext)
	}
	if strings.Contains(joined, "@y") {
		t.Fatalf("PointsTo(p) includes private y: %v", targets)
	}
	// q is a parameter of an exported function.
	if ext, err := res.PointsToExternal("callMe.q"); err != nil || !ext {
		t.Fatalf("callMe.q external = %v, %v", ext, err)
	}
	if esc, err := res.Escaped("y"); err != nil || esc {
		t.Fatalf("y escaped = %v, %v", esc, err)
	}
	if esc, err := res.Escaped("z"); err != nil || !esc {
		t.Fatalf("z escaped = %v, %v", esc, err)
	}
	ext2 := res.ExternallyAccessible()
	if len(ext2) == 0 {
		t.Fatal("no externally accessible objects")
	}
	if res.Stats().Duration <= 0 {
		t.Fatal("missing stats")
	}
	if !strings.Contains(res.Dump(), "@p") {
		t.Fatal("dump missing p")
	}
}

func TestAnalyzeIR(t *testing.T) {
	src := `
module "m"
global @a : ptr = null internal
func @f() internal {
entry:
  %x = alloca i64
  store %x, @a
  ret
}
`
	res, err := AnalyzeIR(src, MustParseConfig("EP+Naive"))
	if err != nil {
		t.Fatal(err)
	}
	targets, ext, err := res.PointsTo("a")
	if err != nil {
		t.Fatal(err)
	}
	if ext || len(targets) != 1 {
		t.Fatalf("PointsTo(a) = %v ext=%v", targets, ext)
	}
}

func TestConfigAPI(t *testing.T) {
	if len(AllConfigs()) != 304 {
		t.Fatalf("AllConfigs = %d", len(AllConfigs()))
	}
	c, err := ParseConfig("IP+WL(FIFO)+PIP")
	if err != nil {
		t.Fatal(err)
	}
	if c != DefaultConfig() {
		t.Fatal("default config mismatch")
	}
	if _, err := ParseConfig("EP+WL(FIFO)+PIP"); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAliasAnalysisAPI(t *testing.T) {
	src := `
extern void *malloc(long);

void work(int *in) {
    int *a = (int*)malloc(4);
    int *b = (int*)malloc(4);
    *a = 1;
    *b = 2;
    *in = 3;
}
`
	res, err := AnalyzeC("alias.c", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	aa := res.AliasAnalysis()
	basic := res.MayAliasRate(aa.Basic)
	comb := res.MayAliasRate(aa.Combined)
	if comb > basic {
		t.Fatalf("combined (%v) worse than BasicAA (%v)", comb, basic)
	}
	if comb >= 1 || comb < 0 {
		t.Fatalf("rate out of range: %v", comb)
	}
}

func TestLookupErrors(t *testing.T) {
	res, err := AnalyzeC("t.c", "int g; int f(int v) { return v; }", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.PointsTo("missing"); err == nil {
		t.Fatal("missing symbol accepted")
	}
	if _, _, err := res.PointsTo("f.nope"); err == nil {
		t.Fatal("missing local accepted")
	}
	if _, _, err := res.PointsTo("nofn.x"); err == nil {
		t.Fatal("missing function accepted")
	}
	if _, _, err := res.PointsTo("g"); err == nil {
		t.Fatal("scalar global should have no points-to set")
	}
	if _, err := res.Escaped("f.v"); err == nil {
		t.Fatal("parameter is not a memory object")
	}
}

func TestCompileAndPrintIR(t *testing.T) {
	m, err := CompileC("x.c", "int* id(int* p) { return p; }")
	if err != nil {
		t.Fatal(err)
	}
	text := PrintIR(m)
	m2, err := ParseIR(text)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if PrintIR(m2) != text {
		t.Fatal("IR text round-trip mismatch")
	}
}

func TestCallGraphAndModRefAPI(t *testing.T) {
	src := `
static int hits;
static void record() { hits = hits + 1; }
static void (*hook)() = record;

void fire() { hook(); }
int peek() { return hits; }
`
	res, err := AnalyzeC("hooks.c", src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cg := res.CallGraph()
	fire := res.Module.Func("fire")
	callees, external := cg.Callees(fire)
	if len(callees) != 1 || callees[0].FName != "record" || external {
		t.Fatalf("fire should call exactly record: %v external=%v", callees, external)
	}
	mr := res.ModRef(cg)
	may, err := res.FunctionMayModify(mr, "fire", "hits")
	if err != nil || !may {
		t.Fatalf("fire must modify hits: %v %v", may, err)
	}
	may, err = res.FunctionMayModify(mr, "peek", "hits")
	if err != nil || may {
		t.Fatalf("peek must not modify hits: %v %v", may, err)
	}
	if _, err := res.FunctionMayModify(mr, "missing", "hits"); err == nil {
		t.Fatal("missing function accepted")
	}
	if _, err := res.FunctionMayModify(mr, "fire", "missing"); err == nil {
		t.Fatal("missing global accepted")
	}
	if !strings.Contains(cg.DOT(), "digraph") {
		t.Fatal("DOT output broken")
	}
}

func TestAnalyzeWithSummariesAPI(t *testing.T) {
	src := `
extern char *strdup(char *s);
static char buf[8];
static char *copy;
void dup() { copy = strdup(buf); }
`
	m, err := CompileC("dup.c", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeWithSummaries(m, DefaultConfig(), map[string]Summary{
		"strdup": {RetFreshHeap: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	targets, external, err := res.PointsTo("copy")
	if err != nil {
		t.Fatal(err)
	}
	if external || len(targets) != 1 || !strings.Contains(targets[0], "heap") {
		t.Fatalf("summarized strdup should return fresh heap: %v ext=%v", targets, external)
	}
	if esc, _ := res.Escaped("buf"); esc {
		t.Fatal("buf must not escape under the summary")
	}
}

func TestRetQueryAPI(t *testing.T) {
	res, err := AnalyzeC("r.c", "static int g; int *addr() { return &g; }", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	targets, external, err := res.PointsTo("addr.$ret")
	if err != nil {
		t.Fatal(err)
	}
	if external || len(targets) != 1 || targets[0] != "@g" {
		t.Fatalf("addr.$ret = %v ext=%v", targets, external)
	}
	if _, _, err := res.PointsTo("missing.$ret"); err == nil {
		t.Fatal("missing function accepted")
	}
}

func TestConstraintGraphDOTAPI(t *testing.T) {
	res, err := AnalyzeC("d.c", "static int x; int *p = &x;", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dot := res.ConstraintGraphDOT(); !strings.Contains(dot, "digraph constraints") {
		t.Fatalf("bad dot: %q", dot[:40])
	}
}

func TestOptimizeAPI(t *testing.T) {
	res, err := AnalyzeC("o.c", `
static long a = 1, b = 2;
long f() {
    long x = a;
    b = 9;
    long y = a;
    return x + y;
}
`, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats := res.Optimize()
	if stats.LoadsEliminated == 0 {
		t.Fatalf("no loads eliminated: %+v", stats)
	}
	res2, err := AnalyzeC("o2.c", `
static long g;
static void note() { }
long h() {
    long x = g;
    note();
    long y = g;
    return x + y;
}
`, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats2, err := res2.OptimizeInterprocedural()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.LoadsEliminated == 0 {
		t.Fatalf("interprocedural elimination failed: %+v", stats2)
	}
}

// TestDegradedResultClientsTolerateNilSets audits every high-level client
// against a budget-degraded solution (whose explicit points-to sets are all
// nil): points-to and escape queries, the solution dump, the constraint
// graph DOT, alias analysis, the call graph, and mod/ref summaries must all
// answer — conservatively — instead of panicking. This is what a serving
// process relies on when an overloaded request degrades soundly.
func TestDegradedResultClientsTolerateNilSets(t *testing.T) {
	src := `
static int x;
int *p = &x;
static int *q;
extern void take(int**);
void f() { q = p; take(&p); }
int *get() { return q; }
`
	cfg := DefaultConfig()
	cfg.Budget = Budget{Firings: -1} // degrade before any propagation
	res, err := AnalyzeC("deg.c", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded() {
		t.Fatal("no-firings budget did not degrade")
	}

	targets, external, err := res.PointsTo("p")
	if err != nil {
		t.Fatalf("PointsTo on degraded result: %v", err)
	}
	if !external {
		t.Fatal("degraded points-to set lost the external marker")
	}
	// The degraded answer is the top element: @p may target every location,
	// in particular @x (which the exact solution reports too).
	found := false
	for _, tgt := range targets {
		if tgt == "@x" {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded PointsTo(@p) lacks @x: %v", targets)
	}
	if ext, err := res.PointsToExternal("p"); err != nil || !ext {
		t.Fatalf("PointsToExternal: %v %v", ext, err)
	}
	if esc, err := res.Escaped("x"); err != nil || !esc {
		t.Fatalf("Escaped(@x) on degraded result: %v %v", esc, err)
	}
	if len(res.ExternallyAccessible()) == 0 {
		t.Fatal("degraded solution reports nothing externally accessible")
	}
	if dump := res.Dump(); !strings.Contains(dump, "<external>") {
		t.Fatalf("degraded dump lacks the external marker:\n%s", dump)
	}
	if dot := res.ConstraintGraphDOT(); !strings.Contains(dot, "digraph constraints") {
		t.Fatal("DOT dump broke on the degraded solution")
	}

	aa := res.AliasAnalysis()
	andersen := res.MayAliasRate(aa.Andersen)
	if andersen < 0 || andersen > 1 {
		t.Fatalf("degraded may-alias rate out of range: %v", andersen)
	}
	// The degraded Andersen analysis is maximally conservative, so the
	// combined analysis can only be at least as precise — never panic, and
	// never report more conflicts than the degraded component alone.
	if comb := res.MayAliasRate(aa.Combined); comb > andersen {
		t.Fatalf("combined rate %v exceeds degraded Andersen rate %v", comb, andersen)
	}

	cg := res.CallGraph()
	if !strings.Contains(cg.DOT(), "digraph") {
		t.Fatal("call graph DOT broke on the degraded solution")
	}
	mr := res.ModRef(cg)
	if mr.Report() == "" {
		t.Fatal("mod/ref report empty on the degraded solution")
	}
	// Everything escaped, so @f may modify any global through external code.
	may, err := res.FunctionMayModify(mr, "f", "q")
	if err != nil {
		t.Fatalf("FunctionMayModify: %v", err)
	}
	if !may {
		t.Fatal("degraded mod/ref claims @f cannot modify @q")
	}
}
