module github.com/pip-analysis/pip

go 1.22
